/**
 * @file
 * Unit and property tests for the commute-Hamiltonian machinery (Eq. 3/5,
 * Eq. 11/12): dense structure, commutation with the constraint operator,
 * eigenstates, and the pair-rotation fast path against dense expm.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/commute.hpp"
#include "core/movebasis.hpp"
#include "linalg/expm.hpp"
#include "linalg/paulis.hpp"
#include "problems/suite.hpp"
#include "sim/statevector.hpp"

using namespace chocoq;
using core::CommuteTerm;
using linalg::Cplx;
using linalg::Matrix;

namespace
{

/** Random move vector over n qubits with at least one non-zero entry. */
std::vector<int>
randomMove(Rng &rng, int n)
{
    std::vector<int> u(n, 0);
    bool nonzero = false;
    while (!nonzero) {
        for (int i = 0; i < n; ++i) {
            u[i] = rng.intIn(-1, 1);
            nonzero = nonzero || u[i] != 0;
        }
    }
    return u;
}

/** [A, B] max-abs entry. */
double
commutatorNorm(const Matrix &a, const Matrix &b)
{
    return (a * b - b * a).maxAbs();
}

} // namespace

TEST(CommuteTerm, PaperSigmaMatrices)
{
    // Eq. (5): sigma^{+1} = [[0,0],[1,0]], sigma^{-1} = [[0,1],[0,0]].
    const Matrix raise = linalg::sigmaRaise();
    EXPECT_EQ(raise.at(1, 0), Cplx(1.0, 0.0));
    EXPECT_EQ(raise.at(0, 1), Cplx(0.0, 0.0));
    const Matrix lower = linalg::sigmaLower();
    EXPECT_EQ(lower.at(0, 1), Cplx(1.0, 0.0));
    EXPECT_EQ(lower.at(1, 0), Cplx(0.0, 0.0));
}

TEST(CommuteTerm, MakeTermExtractsSupportAndPattern)
{
    // The paper's running example u1 = [-1, 1, -1, 0] (Eq. 6).
    const CommuteTerm t = core::makeCommuteTerm({-1, 1, -1, 0});
    EXPECT_EQ(t.support, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(t.supportMask, 0b0111u);
    // v = (1+u)/2 = [0, 1, 0] -> bit 1 set.
    EXPECT_EQ(t.vBits, 0b0010u);
}

TEST(CommuteTerm, RejectsAllZeroMove)
{
    const std::vector<int> zero(3, 0);
    EXPECT_THROW(core::makeCommuteTerm(zero), InternalError);
}

TEST(CommuteTerm, RejectsOutOfAlphabetEntries)
{
    const std::vector<int> bad{2, 0, 0};
    EXPECT_THROW(core::makeCommuteTerm(bad), InternalError);
}

TEST(CommuteDense, SingleVariableTermIsPauliX)
{
    // Hc(u) with a single non-zero entry is X on that qubit.
    const CommuteTerm t = core::makeCommuteTerm({0, 1});
    const Matrix h = core::denseTerm(t, 2);
    const Matrix expect = linalg::embed1q(linalg::pauliX(), 1, 2);
    EXPECT_LT(h.maxAbsDiff(expect), 1e-12);
}

TEST(CommuteDense, TermIsHermitian)
{
    Rng rng(21);
    for (int n = 2; n <= 5; ++n) {
        const CommuteTerm t = core::makeCommuteTerm(randomMove(rng, n));
        EXPECT_TRUE(core::denseTerm(t, n).isHermitian());
    }
}

TEST(CommuteDense, PaperExampleEq6FirstTerm)
{
    // Hc(u1) = sigma-^1 sigma+^2 sigma-^3 + h.c. couples |010> and |101>.
    const CommuteTerm t = core::makeCommuteTerm({-1, 1, -1});
    const Matrix h = core::denseTerm(t, 3);
    // |010> has index 0b010 = 2 (x2=1); |101> has index 0b101 = 5.
    EXPECT_NEAR(std::abs(h.at(2, 5)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(h.at(5, 2)), 1.0, 1e-12);
    // Every other entry vanishes.
    double off = 0.0;
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            if (!((r == 2 && c == 5) || (r == 5 && c == 2)))
                off = std::max(off, std::abs(h.at(r, c)));
    EXPECT_LT(off, 1e-12);
}

TEST(CommuteDense, EigenstatesWithEigenvaluesPlusMinusOne)
{
    // Eq. (11)/(12): Hc |x+-> = +-|x+->.
    const CommuteTerm t = core::makeCommuteTerm({1, -1, 0, 1});
    const int n = 4;
    const Matrix h = core::denseTerm(t, n);
    const Basis v = t.vBits;
    const Basis vbar = v ^ t.supportMask;
    linalg::CVec plus(1 << n, Cplx{0, 0}), minus(1 << n, Cplx{0, 0});
    plus[v] = plus[vbar] = 1.0 / std::sqrt(2.0);
    minus[v] = 1.0 / std::sqrt(2.0);
    minus[vbar] = -1.0 / std::sqrt(2.0);
    const auto hp = h.apply(plus);
    const auto hm = h.apply(minus);
    for (std::size_t i = 0; i < plus.size(); ++i) {
        EXPECT_NEAR(std::abs(hp[i] - plus[i]), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(hm[i] + minus[i]), 0.0, 1e-12);
    }
}

TEST(CommuteDense, AnnihilatesNonPatternStates)
{
    const CommuteTerm t = core::makeCommuteTerm({1, 1, 0});
    const Matrix h = core::denseTerm(t, 3);
    // |010> matches neither |11x> nor |00x> pattern on support {0,1}.
    linalg::CVec other(8, Cplx{0, 0});
    other[0b010] = 1.0;
    const auto res = h.apply(other);
    for (const auto &x : res)
        EXPECT_NEAR(std::abs(x), 0.0, 1e-12);
}

/** Property sweep: commutation with the constraint operator (Sec. III-A). */
class CommuteWithConstraint : public ::testing::TestWithParam<int>
{
};

TEST_P(CommuteWithConstraint, DriverCommutesWithConstraintOperator)
{
    const int seed = GetParam();
    Rng rng(seed);
    const int n = rng.intIn(2, 5);
    // Random integer constraint row.
    std::vector<int> coeffs(n);
    for (auto &c : coeffs)
        c = rng.intIn(-2, 2);
    bool nonzero = false;
    for (int c : coeffs)
        nonzero = nonzero || c != 0;
    if (!nonzero)
        coeffs[0] = 1;

    // Enumerate all moves u with C u = 0 and check [Hc(u), C-hat] = 0.
    const Matrix chat = core::denseConstraintOperator(coeffs, n);
    int checked = 0;
    std::vector<int> u(n, 0);
    const int total = 1;
    (void)total;
    for (long code = 1; code < std::pow(3, n); ++code) {
        long rest = code;
        long dot = 0;
        bool any = false;
        for (int i = 0; i < n; ++i) {
            u[i] = static_cast<int>(rest % 3) - 1;
            rest /= 3;
            dot += static_cast<long>(coeffs[i]) * u[i];
            any = any || u[i] != 0;
        }
        if (!any || dot != 0)
            continue;
        const CommuteTerm t = core::makeCommuteTerm(u);
        EXPECT_LT(commutatorNorm(core::denseTerm(t, n), chat), 1e-12)
            << "u failed commutation for seed " << seed;
        ++checked;
        if (checked >= 8)
            break;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommuteWithConstraint,
                         ::testing::Range(0, 12));

/** Property sweep: pair rotation equals dense expm. */
class PairRotationMatchesExpm : public ::testing::TestWithParam<int>
{
};

TEST_P(PairRotationMatchesExpm, OnRandomStates)
{
    Rng rng(1000 + GetParam());
    const int n = rng.intIn(2, 6);
    const CommuteTerm t = core::makeCommuteTerm(randomMove(rng, n));
    const double beta = rng.uniform(-2.0, 2.0);

    const Matrix u = linalg::expUnitary(core::denseTerm(t, n), beta);

    // Random normalized state.
    sim::StateVector state(n);
    linalg::CVec psi(std::size_t{1} << n);
    double norm2 = 0.0;
    for (auto &a : psi) {
        a = Cplx{rng.normal(), rng.normal()};
        norm2 += std::norm(a);
    }
    for (auto &a : psi)
        a /= std::sqrt(norm2);
    state.amplitudes() = psi;

    core::applyCommuteExact(state, t, beta);
    const auto expect = u.apply(psi);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_NEAR(std::abs(state.amplitudes()[i] - expect[i]), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairRotationMatchesExpm,
                         ::testing::Range(0, 20));

TEST(CommuteDense, TotalNonZerosMatchesSupportSizes)
{
    const auto terms = core::makeCommuteTerms(
        {{-1, 1, -1, 0}, {0, -1, 0, 1}});
    // 3 + 2 = 5, the count used by the Sec. IV-C depth argument.
    EXPECT_EQ(core::totalNonZeros(terms), 5u);
}

TEST(CommuteDense, ConstraintOperatorIsDiagonalZSum)
{
    const std::vector<int> coeffs{1, -2};
    const Matrix chat = core::denseConstraintOperator(coeffs, 2);
    // Eigenvalue on |x1 x2> is sum_i c_i (1 - 2 x_i).
    for (Basis idx = 0; idx < 4; ++idx) {
        double expect = 0.0;
        for (int i = 0; i < 2; ++i)
            expect += coeffs[i] * (1.0 - 2.0 * getBit(idx, i));
        EXPECT_NEAR(chat.at(idx, idx).real(), expect, 1e-12);
    }
}
