/**
 * @file
 * Tests for the derivative-free optimizers on standard objectives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "optimize/cobyla.hpp"
#include "optimize/neldermead.hpp"
#include "optimize/optimizer.hpp"
#include "optimize/spsa.hpp"

using namespace chocoq;
using optimize::ObjectiveFn;
using optimize::OptOptions;

namespace
{

double
quadratic(const std::vector<double> &x)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += (x[i] - static_cast<double>(i)) * (x[i]
                                                  - static_cast<double>(i));
    return acc;
}

double
rosenbrock(const std::vector<double> &x)
{
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i)
        acc += 100.0 * std::pow(x[i + 1] - x[i] * x[i], 2)
               + std::pow(1.0 - x[i], 2);
    return acc;
}

} // namespace

/** All three methods on a separable quadratic. */
class OptimizerQuadratic
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OptimizerQuadratic, ConvergesNearMinimum)
{
    const auto opt = optimize::makeOptimizer(GetParam());
    OptOptions opts;
    opts.maxIterations = 400;
    opts.initialStep = 0.8;
    opts.seed = 3;
    const auto res = opt->minimize(quadratic, {2.0, 2.0, 2.0}, opts);
    EXPECT_LT(res.bestValue, 0.5) << opt->name();
    EXPECT_GT(res.evaluations, 0);
    EXPECT_GT(res.iterations, 0);
}

TEST_P(OptimizerQuadratic, TraceIsMonotoneNonIncreasing)
{
    const auto opt = optimize::makeOptimizer(GetParam());
    OptOptions opts;
    opts.maxIterations = 100;
    const auto res = opt->minimize(quadratic, {3.0, -1.0}, opts);
    for (std::size_t i = 1; i < res.trace.size(); ++i)
        EXPECT_LE(res.trace[i].best, res.trace[i - 1].best + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Methods, OptimizerQuadratic,
                         ::testing::Values("cobyla", "nelder-mead", "spsa"));

TEST(Cobyla, HandlesOneDimension)
{
    const optimize::Cobyla opt;
    OptOptions opts;
    opts.maxIterations = 200;
    const auto res = opt.minimize(
        [](const std::vector<double> &x) {
            return (x[0] - 1.5) * (x[0] - 1.5);
        },
        {0.0}, opts);
    EXPECT_NEAR(res.best[0], 1.5, 0.05);
}

TEST(Cobyla, ImprovesRosenbrockSubstantially)
{
    const optimize::Cobyla opt;
    OptOptions opts;
    opts.maxIterations = 500;
    opts.initialStep = 0.5;
    const std::vector<double> x0{-1.2, 1.0};
    const auto res = opt.minimize(rosenbrock, x0, opts);
    EXPECT_LT(res.bestValue, rosenbrock(x0) * 0.25);
}

TEST(NelderMead, SolvesRosenbrock2d)
{
    const optimize::NelderMead opt;
    OptOptions opts;
    opts.maxIterations = 2000;
    opts.tolerance = 1e-8;
    const auto res = opt.minimize(rosenbrock, {-1.2, 1.0}, opts);
    EXPECT_LT(res.bestValue, 1e-4);
    EXPECT_NEAR(res.best[0], 1.0, 0.05);
    EXPECT_NEAR(res.best[1], 1.0, 0.05);
}

TEST(Spsa, DeterministicForFixedSeed)
{
    const optimize::Spsa opt;
    OptOptions opts;
    opts.maxIterations = 50;
    opts.seed = 99;
    const auto a = opt.minimize(quadratic, {1.0, 1.0}, opts);
    const auto b = opt.minimize(quadratic, {1.0, 1.0}, opts);
    EXPECT_EQ(a.bestValue, b.bestValue);
    EXPECT_EQ(a.best, b.best);
}

TEST(Spsa, UsesTwoEvaluationsPerIteration)
{
    const optimize::Spsa opt;
    OptOptions opts;
    opts.maxIterations = 30;
    const auto res = opt.minimize(quadratic, {0.5}, opts);
    // 1 initial + 2 per iteration + 1 final.
    EXPECT_EQ(res.evaluations, 1 + 2 * res.iterations + 1);
}

TEST(Factory, ReturnsNamedMethodsAndRejectsUnknown)
{
    EXPECT_EQ(optimize::makeOptimizer("cobyla")->name(), "cobyla");
    EXPECT_EQ(optimize::makeOptimizer("nelder-mead")->name(),
              "nelder-mead");
    EXPECT_EQ(optimize::makeOptimizer("spsa")->name(), "spsa");
    EXPECT_THROW(optimize::makeOptimizer("adam"), FatalError);
}

TEST(Optimizers, RespectIterationBudget)
{
    for (const char *name : {"cobyla", "nelder-mead", "spsa"}) {
        const auto opt = optimize::makeOptimizer(name);
        OptOptions opts;
        opts.maxIterations = 7;
        opts.tolerance = 0.0;
        const auto res = opt->minimize(quadratic, {5.0, 5.0}, opts);
        EXPECT_LE(res.iterations, 7) << name;
    }
}

TEST(Optimizers, FlatObjectiveTerminatesGracefully)
{
    for (const char *name : {"cobyla", "nelder-mead", "spsa"}) {
        const auto opt = optimize::makeOptimizer(name);
        OptOptions opts;
        opts.maxIterations = 50;
        const auto res = opt->minimize(
            [](const std::vector<double> &) { return 1.0; }, {0.0, 0.0},
            opts);
        EXPECT_DOUBLE_EQ(res.bestValue, 1.0) << name;
    }
}
