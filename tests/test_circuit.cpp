/**
 * @file
 * Unit tests for the circuit IR: builder validation, depth analysis,
 * gate statistics, and ancilla management.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/error.hpp"

using namespace chocoq;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

TEST(Circuit, EmptyCircuit)
{
    Circuit c(3);
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.depth(), 0);
    EXPECT_EQ(c.gateCount(), 0u);
}

TEST(Circuit, DepthCountsParallelGatesOnce)
{
    Circuit c(4);
    c.h(0);
    c.h(1);
    c.h(2);
    c.h(3);
    EXPECT_EQ(c.depth(), 1);
    c.cx(0, 1);
    c.cx(2, 3);
    EXPECT_EQ(c.depth(), 2);
    c.cx(1, 2);
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, BarrierSynchronizesLayers)
{
    Circuit c(2);
    c.h(0);
    c.barrier();
    c.h(1);
    // Without the barrier the two H gates would share a layer.
    EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, RejectsOutOfRangeOperands)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), InternalError);
    EXPECT_THROW(c.cx(0, 5), InternalError);
    EXPECT_THROW(c.h(-1), InternalError);
}

TEST(Circuit, RejectsDuplicateOperands)
{
    Circuit c(3);
    EXPECT_THROW(c.cx(1, 1), InternalError);
    std::vector<int> dup{0, 1, 0};
    EXPECT_THROW(c.mcp(dup, 0.3), InternalError);
}

TEST(Circuit, AncillaGrowsRegister)
{
    Circuit c(2);
    const int a = c.addAncilla();
    EXPECT_EQ(a, 2);
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.numData(), 2);
    c.h(a); // now valid
    EXPECT_EQ(c.gateCount(), 1u);
}

TEST(Circuit, GateHistogramAndMultiQubitCount)
{
    Circuit c(3);
    c.h(0);
    c.h(1);
    c.cx(0, 1);
    c.ccx(0, 1, 2);
    c.barrier();
    const auto hist = c.gateHistogram();
    EXPECT_EQ(hist.at("h"), 2u);
    EXPECT_EQ(hist.at("cx"), 1u);
    EXPECT_EQ(hist.at("ccx"), 1u);
    EXPECT_EQ(c.multiQubitGateCount(), 2u);
    EXPECT_EQ(c.gateCount(), 4u);
}

TEST(Circuit, AppendConcatenates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    a.append(b);
    EXPECT_EQ(a.gateCount(), 2u);
    EXPECT_EQ(a.gates()[1].type, GateType::CX);
}

TEST(Circuit, ParamCarriedOnRotations)
{
    Circuit c(1);
    c.rz(0, 0.75);
    EXPECT_DOUBLE_EQ(c.gates()[0].param, 0.75);
    EXPECT_TRUE(circuit::gateHasParam(GateType::RZ));
    EXPECT_FALSE(circuit::gateHasParam(GateType::CX));
}

TEST(Circuit, NamesAreStable)
{
    EXPECT_EQ(circuit::gateName(GateType::MCP), "mcp");
    EXPECT_EQ(circuit::gateName(GateType::XY), "xy");
    EXPECT_EQ(circuit::gateName(GateType::BARRIER), "barrier");
}

TEST(Circuit, StrMentionsShape)
{
    Circuit c(2);
    c.h(0);
    const std::string s = c.str();
    EXPECT_NE(s.find("2 data"), std::string::npos);
    EXPECT_NE(s.find("h q0"), std::string::npos);
}

TEST(Circuit, McpDepthCountsAllOperands)
{
    Circuit c(4);
    c.mcp({0, 1, 2, 3}, 0.5);
    c.h(0);
    EXPECT_EQ(c.depth(), 2); // H must wait for the MCP on q0.
}
