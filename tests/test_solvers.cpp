/**
 * @file
 * Solver-level unit tests: the shared QAOA engine, the penalty baseline's
 * freezing/warm-start machinery, cyclic mixer construction, the Trotter
 * comparator, and the device/latency models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/chocoq_solver.hpp"
#include "core/circuits.hpp"
#include "core/commute.hpp"
#include "core/qaoa.hpp"
#include "device/device.hpp"
#include "model/exact.hpp"
#include "problems/suite.hpp"
#include "solvers/cyclic.hpp"
#include "solvers/penalty.hpp"
#include "sim/unitary.hpp"
#include "solvers/trotter.hpp"

using namespace chocoq;

TEST(QaoaEngine, SingleSubrunExactDistribution)
{
    // One-qubit "ansatz": RX rotation; cost favors |1>.
    core::SubRun run;
    run.numQubits = 1;
    run.init = 0;
    run.build = [](const std::vector<double> &theta) {
        circuit::Circuit c(1);
        c.rx(0, theta[0]);
        return c;
    };
    run.lift = [](Basis x) { return x; };

    core::EngineOptions opts;
    opts.theta0 = {0.5};
    opts.opt.maxIterations = 80;
    const auto res = core::runQaoa(
        {run}, [](Basis x) { return x == 1 ? -1.0 : 1.0; }, opts);
    // Optimal RX angle is pi: all mass on |1>.
    EXPECT_GT(res.distribution.at(1), 0.95);
    EXPECT_LE(res.opt.bestValue, -0.9);
}

TEST(QaoaEngine, EvolveFastPathMatchesBuild)
{
    core::SubRun a;
    a.numQubits = 2;
    a.build = [](const std::vector<double> &theta) {
        circuit::Circuit c(2);
        c.h(0);
        c.cp(0, 1, theta[0]);
        c.rx(1, theta[0]);
        return c;
    };
    a.lift = [](Basis x) { return x; };
    core::SubRun b = a;
    b.evolve = [](sim::StateVector &state,
                  const std::vector<double> &theta) {
        state.reset(0);
        constexpr double kInvSqrt2 = 0.70710678118654752440;
        state.apply1q(0, kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
        state.applyPhaseMask(0b11, theta[0]);
        const sim::Cplx c{std::cos(theta[0] / 2), 0.0};
        const sim::Cplx ms{0.0, -std::sin(theta[0] / 2)};
        state.apply1q(1, c, ms, ms, c);
    };

    core::EngineOptions opts;
    opts.theta0 = {0.9};
    opts.opt.maxIterations = 10;
    const auto cost = [](Basis x) { return static_cast<double>(x); };
    const auto res_a = core::runQaoa({a}, cost, opts);
    const auto res_b = core::runQaoa({b}, cost, opts);
    EXPECT_NEAR(res_a.opt.bestValue, res_b.opt.bestValue, 1e-9);
}

TEST(QaoaEngine, MultipleSubrunsMergeWeighted)
{
    // Two constant circuits pinned to |0> and |1>, weights 1 and 3.
    auto make = [](Basis init, double weight) {
        core::SubRun run;
        run.numQubits = 1;
        run.init = init;
        run.weight = weight;
        run.build = [init](const std::vector<double> &) {
            circuit::Circuit c(1);
            core::appendBasisPreparation(c, init);
            return c;
        };
        run.lift = [](Basis x) { return x; };
        return run;
    };
    core::EngineOptions opts;
    opts.theta0 = {0.0};
    opts.opt.maxIterations = 2;
    const auto res = core::runQaoa({make(0, 1.0), make(1, 3.0)},
                                   [](Basis) { return 0.0; }, opts);
    EXPECT_NEAR(res.distribution.at(0), 0.25, 1e-9);
    EXPECT_NEAR(res.distribution.at(1), 0.75, 1e-9);
}

TEST(QaoaEngine, ShotSamplingApproximatesExact)
{
    core::SubRun run;
    run.numQubits = 1;
    run.build = [](const std::vector<double> &) {
        circuit::Circuit c(1);
        c.h(0);
        return c;
    };
    run.lift = [](Basis x) { return x; };
    core::EngineOptions opts;
    opts.theta0 = {0.0};
    opts.opt.maxIterations = 1;
    opts.shots = 20000;
    const auto res = core::runQaoa({run}, [](Basis) { return 0.0; }, opts);
    EXPECT_NEAR(res.distribution.at(0), 0.5, 0.03);
}

TEST(QaoaEngine, ReportsTranspiledArtifacts)
{
    const auto terms = core::makeCommuteTerms({{1, -1, 1, 0}});
    core::SubRun run;
    run.numQubits = 4;
    run.build = [terms](const std::vector<double> &theta) {
        circuit::Circuit c(4);
        core::appendDriverLayer(c, terms, theta[0]);
        return c;
    };
    run.lift = [](Basis x) { return x; };
    core::EngineOptions opts;
    opts.theta0 = {0.7};
    opts.opt.maxIterations = 1;
    const auto res = core::runQaoa({run}, [](Basis) { return 0.0; }, opts);
    EXPECT_GT(res.basisDepth, res.logicalDepth);
    EXPECT_GT(res.basisGateCount, 0u);
    EXPECT_GE(res.qubitsUsed, 4);
}

TEST(Penalty, FreezeZeroRunsOneCircuit)
{
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    solvers::PenaltyOptions opts;
    opts.layers = 2;
    opts.freeze = 0;
    opts.warmStart = false;
    opts.engine.opt.maxIterations = 10;
    const auto run = solvers::PenaltyQaoaSolver(opts).solve(p);
    EXPECT_EQ(run.circuitsPerIteration, 1);
}

TEST(Penalty, FreezeTwoRunsFourCircuits)
{
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    solvers::PenaltyOptions opts;
    opts.layers = 2;
    opts.freeze = 2;
    opts.warmStart = false;
    opts.engine.opt.maxIterations = 10;
    const auto run = solvers::PenaltyQaoaSolver(opts).solve(p);
    EXPECT_EQ(run.circuitsPerIteration, 4);
    // Distribution still covers the full variable space and normalizes.
    double total = 0.0;
    for (const auto &[x, prob] : run.distribution) {
        EXPECT_LT(x, Basis{1} << p.numVars());
        total += prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Penalty, WarmStartDoesNotHurtCost)
{
    const auto p = problems::makeCase(problems::Scale::K1, 1);
    solvers::PenaltyOptions cold;
    cold.layers = 2;
    cold.warmStart = false;
    cold.engine.opt.maxIterations = 25;
    solvers::PenaltyOptions warm = cold;
    warm.warmStart = true;
    const auto run_cold = solvers::PenaltyQaoaSolver(cold).solve(p);
    const auto run_warm = solvers::PenaltyQaoaSolver(warm).solve(p);
    EXPECT_LE(run_warm.bestCost, run_cold.bestCost + 2.0);
}

TEST(Cyclic, MixerPairsFollowConstraintChains)
{
    model::Problem p(5);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 1, 0, 0}, 1); // chain (0,1), (1,2)
    p.addEquality({0, 0, 0, 1, 1}, 1); // chain (3,4)
    p.addEquality({1, 0, -1, 0, 0}, 0); // mixed sign: skipped
    const auto pairs = solvers::CyclicQaoaSolver::mixerPairs(p);
    ASSERT_EQ(pairs.size(), 3u);
    EXPECT_EQ(pairs[0], (std::pair<int, int>{0, 1}));
    EXPECT_EQ(pairs[1], (std::pair<int, int>{1, 2}));
    EXPECT_EQ(pairs[2], (std::pair<int, int>{3, 4}));
}

TEST(Cyclic, InfeasibleProblemThrows)
{
    model::Problem p(2);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1}, 5);
    solvers::CyclicQaoaSolver solver;
    EXPECT_THROW(solver.solve(p), FatalError);
}

TEST(Trotter, SmallDriverSucceedsAndScales)
{
    const auto terms =
        core::makeCommuteTerms({{1, -1, 0, 0}, {0, 1, -1, 0},
                                {0, 0, 1, -1}});
    solvers::TrotterOptions opts;
    opts.repetitions = 10;
    const auto r4 = solvers::trotterDecompose(terms, 4, 0.7, opts);
    EXPECT_FALSE(r4.timedOut);
    EXPECT_GT(r4.depth, 0u);
    EXPECT_GT(r4.peakBytes, (std::size_t{1} << 8) * 16);

    // Choco path: orders of magnitude cheaper.
    const auto choco = solvers::chocoDecompose(terms, 4, 0.7);
    EXPECT_LT(choco.depth, r4.depth / 10);
    EXPECT_LT(choco.peakBytes, r4.peakBytes);
}

TEST(Trotter, QubitCapTriggersTimeout)
{
    const auto terms = core::makeCommuteTerms({{1, -1}});
    solvers::TrotterOptions opts;
    opts.maxQubits = 6;
    const auto report = solvers::trotterDecompose(terms, 7, 0.5, opts);
    EXPECT_TRUE(report.timedOut);
}

TEST(Trotter, ErrorShrinksWithMoreRepetitions)
{
    const auto terms =
        core::makeCommuteTerms({{1, -1, 0}, {0, 1, -1}});
    solvers::TrotterOptions coarse;
    coarse.repetitions = 2;
    coarse.measureError = true;
    solvers::TrotterOptions fine = coarse;
    fine.repetitions = 20;
    const auto r_coarse = solvers::trotterDecompose(terms, 3, 0.9, coarse);
    const auto r_fine = solvers::trotterDecompose(terms, 3, 0.9, fine);
    EXPECT_LT(r_fine.stepError, r_coarse.stepError);
}

TEST(Device, PresetsMatchPaperDescription)
{
    const auto dev_fez = device::fez();
    EXPECT_TRUE(dev_fez.nativeCz);
    EXPECT_NEAR(dev_fez.err2qNative, 0.003, 1e-9); // CZ 99.7%
    const auto dev_osaka = device::osaka();
    EXPECT_FALSE(dev_osaka.nativeCz);
    EXPECT_NEAR(dev_osaka.err2qNative, 0.007, 1e-9); // ECR 99.3%
    EXPECT_NEAR(dev_osaka.czFactor, 3.0, 1e-9); // 3 ECR per CZ
    EXPECT_EQ(device::allDevices().size(), 3u);
}

TEST(Device, LookupByNameIsCaseInsensitive)
{
    EXPECT_EQ(device::deviceByName("FEZ").name, "Fez");
    EXPECT_EQ(device::deviceByName("sherbrooke").name, "Sherbrooke");
    EXPECT_THROW(device::deviceByName("quito"), FatalError);
}

TEST(Device, NoiseScalesWithCzFactor)
{
    const auto noise_fez = device::noiseOf(device::fez());
    const auto noise_osaka = device::noiseOf(device::osaka());
    EXPECT_LT(noise_fez.p2q, noise_osaka.p2q);
    EXPECT_NEAR(noise_osaka.p2q, 0.021, 1e-9);
}

TEST(Device, LatencyBreakdownAddsUp)
{
    const auto lat = device::estimateLatency(device::fez(), 200, 30, 2,
                                             1000, 0.4, 0.1);
    EXPECT_NEAR(lat.total(),
                lat.compileSeconds + lat.quantumSeconds
                    + lat.classicalSeconds,
                1e-12);
    EXPECT_GT(lat.quantumSeconds, 0.0);
    // More iterations cost more quantum time.
    const auto lat2 = device::estimateLatency(device::fez(), 200, 60, 2,
                                              1000, 0.4, 0.1);
    EXPECT_GT(lat2.quantumSeconds, lat.quantumSeconds);
}

TEST(QaoaEngine, ExtraStartsFindBetterMinimum)
{
    // Objective with a deceptive local minimum near theta0 and the true
    // minimum near an extra start.
    core::SubRun run;
    run.numQubits = 1;
    run.build = [](const std::vector<double> &theta) {
        circuit::Circuit c(1);
        c.rx(0, theta[0]);
        return c;
    };
    run.lift = [](Basis x) { return x; };
    core::EngineOptions narrow;
    narrow.theta0 = {0.05};
    narrow.opt.maxIterations = 15;
    narrow.opt.initialStep = 0.05;
    const auto cost = [](Basis x) { return x == 1 ? -1.0 : 1.0; };
    const auto res_narrow = core::runQaoa({run}, cost, narrow);

    core::EngineOptions multi = narrow;
    multi.extraStarts = {{3.0}};
    const auto res_multi = core::runQaoa({run}, cost, multi);
    EXPECT_LE(res_multi.opt.bestValue, res_narrow.opt.bestValue + 1e-9);
    EXPECT_GT(res_multi.opt.evaluations, res_narrow.opt.evaluations);
}

TEST(QaoaEngine, IndependentSubrunsOptimizeSeparately)
{
    // Two one-qubit subruns whose optimal angles differ; independent
    // optimization should satisfy both.
    auto make = [](double target) {
        core::SubRun run;
        run.numQubits = 1;
        run.build = [](const std::vector<double> &theta) {
            circuit::Circuit c(1);
            c.rx(0, theta[0]);
            return c;
        };
        run.lift = [target](Basis x) {
            // Subrun A rewards |1>, subrun B rewards |0> via lift trick:
            // map to distinct full-space states.
            return static_cast<Basis>(target > 0 ? x : (x ^ 1)) ;
        };
        return run;
    };
    core::EngineOptions opts;
    opts.theta0 = {0.4};
    opts.opt.maxIterations = 60;
    opts.independentSubruns = true;
    const auto res = core::runQaoa(
        {make(1.0), make(-1.0)},
        [](Basis x) { return x == 1 ? -1.0 : 1.0; }, opts);
    // Both subruns can push all their mass onto full-space |1>.
    EXPECT_GT(res.distribution.at(1), 0.9);
}

TEST(Ablation, GenericSynthesisPaddingDeepensWithoutChangingResult)
{
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    core::ChocoQOptions plain;
    plain.eliminate = 0;
    plain.engine.theta0 = {0.5, 1.1};
    plain.engine.opt.maxIterations = 1;
    plain.engine.opt.initialStep = 1e-9;
    core::ChocoQOptions padded = plain;
    padded.genericSynthesisPadding = true;

    const auto run_plain = core::ChocoQSolver(plain).solve(p);
    const auto run_padded = core::ChocoQSolver(padded).solve(p);
    EXPECT_GT(run_padded.basisDepth, run_plain.basisDepth);
    EXPECT_GT(run_padded.basisGateCount, run_plain.basisGateCount);
    // Identity padding: the noiseless distribution is unchanged.
    for (const auto &[x, prob] : run_plain.distribution) {
        const auto it = run_padded.distribution.find(x);
        ASSERT_NE(it, run_padded.distribution.end());
        EXPECT_NEAR(prob, it->second, 1e-9);
    }
}

TEST(Ablation, GenericSynthesisCostGrowsFasterThanLemma2)
{
    // The generic/Lemma-2 basic-gate ratio grows with the support size
    // (exponential vs linear decomposition cost).
    double prev_ratio = 0.0;
    for (int k : {3, 5, 7}) {
        std::vector<int> u(k, 1);
        for (int i = 0; i < k; i += 2)
            u[i] = -1;
        const auto term = core::makeCommuteTerm(u);
        const std::size_t generic =
            core::genericTermSynthesisGates(term, 0.7);
        circuit::Circuit c(k);
        core::appendCommuteTermCircuit(c, term, 0.7);
        const std::size_t lemma2 = circuit::transpile(c).gateCount();
        const double ratio = static_cast<double>(generic)
                             / static_cast<double>(lemma2);
        EXPECT_GT(ratio, prev_ratio);
        prev_ratio = ratio;
    }
    EXPECT_GT(prev_ratio, 2.0);
}

TEST(Padding, IdentityPairsPreserveUnitary)
{
    circuit::Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    circuit::Circuit padded = c;
    core::appendIdentityPadding(padded, 5);
    EXPECT_EQ(padded.gateCount(), c.gateCount() + 10);
    const auto u = sim::circuitUnitary(c);
    const auto v = sim::circuitUnitary(padded);
    EXPECT_LT(u.maxAbsDiff(v), 1e-12);
}
