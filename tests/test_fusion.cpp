/**
 * @file
 * Fusion equivalence suite.
 *
 * Two different contracts are pinned down here (see docs/simulator.md,
 * "Gate fusion"):
 *  - the functional-path fusion (compressed objective phase, grouped
 *    commute sweeps, the solver's fused evolve closures) must be
 *    BIT-IDENTICAL to the unfused kernels — the service's determinism
 *    guarantees ride on it;
 *  - the circuit-path fusion (FusedDiagonal blocks) accumulates each
 *    run's factors into one product per amplitude and is equivalent
 *    within floating-point reassociation, checked at 1e-12 on
 *    randomized circuits across register widths k = 1..8.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "circuit/fusion.hpp"
#include "common/rng.hpp"
#include "core/chocoq_solver.hpp"
#include "core/commute.hpp"
#include "core/layer_fusion.hpp"
#include "problems/suite.hpp"
#include "service/compile_cache.hpp"
#include "sim/executor.hpp"
#include "sim/parallel.hpp"
#include "sim/statevector.hpp"

using namespace chocoq;
using circuit::Circuit;
using circuit::FusionOptions;
using circuit::GateType;
using linalg::Cplx;
using linalg::CVec;
using sim::StateVector;

namespace
{

constexpr double kTol = 1e-12;

CVec
randomState(Rng &rng, int n)
{
    CVec psi(std::size_t{1} << n);
    double norm2 = 0;
    for (auto &a : psi) {
        a = Cplx{rng.normal(), rng.normal()};
        norm2 += std::norm(a);
    }
    for (auto &a : psi)
        a /= std::sqrt(norm2);
    return psi;
}

void
expectNearState(const CVec &got, const CVec &want, double tol = kTol)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].real(), want[i].real(), tol) << "index " << i;
        ASSERT_NEAR(got[i].imag(), want[i].imag(), tol) << "index " << i;
    }
}

void
expectBitwiseState(const CVec &got, const CVec &want)
{
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(Cplx)),
              0);
}

/** Random circuit mixing every diagonal gate with non-diagonal ones. */
Circuit
randomMixedCircuit(Rng &rng, int n, int gates)
{
    Circuit c(n);
    for (int g = 0; g < gates; ++g) {
        const int q = rng.intIn(0, n - 1);
        int q2 = n > 1 ? rng.intIn(0, n - 2) : 0;
        if (n > 1 && q2 >= q)
            ++q2;
        const double theta = rng.uniform() * 6.0 - 3.0;
        switch (rng.intIn(0, 12)) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.rx(q, theta); break;
          case 3: c.ry(q, theta); break;
          case 4: c.rz(q, theta); break;
          case 5: c.p(q, theta); break;
          case 6: c.s(q); break;
          case 7: c.t(q); break;
          case 8:
            if (n > 1)
                c.cx(q, q2);
            else
                c.z(q);
            break;
          case 9:
            if (n > 1)
                c.cp(q, q2, theta);
            else
                c.sdg(q);
            break;
          case 10:
            if (n > 1)
                c.rzz(q, q2, theta);
            else
                c.tdg(q);
            break;
          case 11:
            if (n > 2) {
                c.mcp({0, 1, 2}, theta);
                break;
            }
            c.z(q);
            break;
          default:
            if (n > 1)
                c.cz(q, q2);
            else
                c.p(q, theta);
            break;
        }
    }
    return c;
}

} // namespace

// ---- circuit-level fusion pass ----

TEST(FusionPass, FoldsDiagonalRunsAndPassesOthersThrough)
{
    Circuit c(3);
    c.h(0);
    c.rz(0, 0.3);
    c.rzz(0, 1, 0.7); // run of 2 gates, fraction 1 + 1 >= 1 -> fused
    c.cx(0, 2);
    c.p(2, 0.5); // run of 1 -> below minGates, passthrough
    const auto fused = circuit::fuseDiagonals(c);
    ASSERT_EQ(fused.sourceGates, 5u);
    ASSERT_EQ(fused.fusedGates, 2u);
    ASSERT_EQ(fused.diagonalBlocks, 1u);
    ASSERT_EQ(fused.ops.size(), 4u); // h, block, cx, p
    EXPECT_FALSE(fused.ops[0].diagonal);
    EXPECT_TRUE(fused.ops[1].diagonal);
    EXPECT_EQ(fused.ops[1].diag.gateCount, 2u);
    // rz contributes 1 term, rzz contributes 3.
    EXPECT_EQ(fused.ops[1].diag.terms.size(), 4u);
    EXPECT_FALSE(fused.ops[2].diagonal);
    EXPECT_FALSE(fused.ops[3].diagonal);
}

TEST(FusionPass, CostModelKeepsSparseRunsUnfused)
{
    // Two CZ gates touch half a state in total: cheaper unfused.
    Circuit c(4);
    c.cz(0, 1);
    c.cz(2, 3);
    const auto fused = circuit::fuseDiagonals(c);
    EXPECT_EQ(fused.diagonalBlocks, 0u);
    EXPECT_EQ(fused.fusedGates, 0u);
    ASSERT_EQ(fused.ops.size(), 2u);

    // Opting the threshold down forces the fusion.
    FusionOptions opts;
    opts.minSweepFraction = 0.0;
    const auto forced = circuit::fuseDiagonals(c, opts);
    EXPECT_EQ(forced.diagonalBlocks, 1u);
    EXPECT_EQ(forced.fusedGates, 2u);
}

TEST(FusionPass, BarrierEndsARun)
{
    Circuit c(2);
    c.rz(0, 0.4);
    c.barrier();
    c.rz(1, 0.6);
    const auto fused = circuit::fuseDiagonals(c);
    // Each side of the barrier is a run of one gate: no block.
    EXPECT_EQ(fused.diagonalBlocks, 0u);
    ASSERT_EQ(fused.ops.size(), 3u);
}

TEST(FusionPass, RandomCircuitsMatchUnfusedExecution)
{
    Rng rng(20250727);
    for (int n = 1; n <= 8; ++n) {
        for (int rep = 0; rep < 8; ++rep) {
            const Circuit c = randomMixedCircuit(rng, n, 24);
            const CVec psi = randomState(rng, n);

            StateVector plain(n), fused(n);
            plain.amplitudes() = psi;
            fused.amplitudes() = psi;
            sim::execute(plain, c);

            FusionOptions opts;
            opts.minSweepFraction = rep % 2 == 0 ? 1.0 : 0.0;
            sim::execute(fused, circuit::fuseDiagonals(c, opts));
            expectNearState(fused.amplitudes(), plain.amplitudes());
        }
    }
}

TEST(FusionPass, MaskPhaseProductMatchesSequentialGates)
{
    Rng rng(7);
    const int n = 6;
    for (int rep = 0; rep < 16; ++rep) {
        Circuit c(n);
        const int gates = rng.intIn(2, 6);
        for (int g = 0; g < gates; ++g) {
            const double theta = rng.uniform() * 6.0 - 3.0;
            const int a = rng.intIn(0, n - 1);
            int b = rng.intIn(0, n - 2);
            if (b >= a)
                ++b;
            if (rng.chance(0.5))
                c.rz(a, theta);
            else
                c.cp(a, b, theta);
        }
        const CVec psi = randomState(rng, n);
        StateVector plain(n), fused(n);
        plain.amplitudes() = psi;
        fused.amplitudes() = psi;
        sim::execute(plain, c);
        FusionOptions opts;
        opts.minSweepFraction = 0.0;
        const auto fc = circuit::fuseDiagonals(c, opts);
        ASSERT_EQ(fc.diagonalBlocks, 1u);
        sim::execute(fused, fc);
        expectNearState(fused.amplitudes(), plain.amplitudes());
    }
}

// ---- functional-path fusion: bit-identical contracts ----

TEST(FusedLayer, CompressedPhaseIsBitIdentical)
{
    Rng rng(11);
    for (int n : {4, 8, 10}) {
        const std::size_t dim = std::size_t{1} << n;
        // Few distinct values (the objective-table shape).
        std::vector<double> table(dim);
        for (auto &v : table)
            v = static_cast<double>(rng.intIn(-5, 6));
        const auto plan = core::buildFusedLayerPlan(table, {});
        ASSERT_TRUE(plan.compressedPhase);
        EXPECT_LE(plan.distinctValues.size(), 12u);

        for (const double gamma : {0.0, 0.37, -2.25, 14.0}) {
            const CVec psi = randomState(rng, n);
            StateVector plain(n), fused(n);
            plain.amplitudes() = psi;
            fused.amplitudes() = psi;
            plain.applyPhaseTable(table, gamma);
            std::vector<Cplx> scratch;
            core::applyFusedObjectivePhase(fused, plan, table, gamma,
                                           scratch);
            expectBitwiseState(fused.amplitudes(), plain.amplitudes());
        }
    }
}

TEST(FusedLayer, CompressionCoversAllDistinctTables)
{
    // Every entry distinct: still compressible up to the uint16 range.
    Rng rng(12);
    const int n = 8;
    std::vector<double> table(std::size_t{1} << n);
    for (auto &v : table)
        v = rng.normal();
    const auto plan = core::buildFusedLayerPlan(table, {});
    ASSERT_TRUE(plan.compressedPhase);
    EXPECT_EQ(plan.distinctValues.size(), table.size());

    StateVector plain(n), fused(n);
    const CVec psi = randomState(rng, n);
    plain.amplitudes() = psi;
    fused.amplitudes() = psi;
    plain.applyPhaseTable(table, 0.9);
    std::vector<Cplx> scratch;
    core::applyFusedObjectivePhase(fused, plan, table, 0.9, scratch);
    expectBitwiseState(fused.amplitudes(), plain.amplitudes());
}

TEST(FusedLayer, CommuteGroupsAreBitIdentical)
{
    // Three terms sharing the support {1, 3, 5} with pairwise-disjoint
    // pair sets, then a term on a different support.
    const auto term = [](std::vector<int> u) {
        return core::makeCommuteTerm(u);
    };
    const std::vector<core::CommuteTerm> terms = {
        term({0, 1, 0, 1, 0, 1}),   // v = {1,3,5}
        term({0, 1, 0, -1, 0, 1}),  // v = {1,5}
        term({0, 1, 0, 1, 0, -1}),  // v = {1,3}
        term({1, 0, 1, 0, 0, 0}),   // different support
    };
    const auto plan = core::buildFusedLayerPlan({}, terms);
    ASSERT_EQ(plan.groups.size(), 2u);
    EXPECT_EQ(plan.groups[0].vBits.size(), 3u);
    EXPECT_EQ(plan.termCount, 4u);

    Rng rng(13);
    const int n = 6;
    for (const double beta : {0.3, 1.9, -0.8}) {
        const CVec psi = randomState(rng, n);
        StateVector plain(n), fused(n);
        plain.amplitudes() = psi;
        fused.amplitudes() = psi;
        core::applyCommuteLayer(plain, terms, beta);
        core::applyFusedCommuteLayer(fused, plan, beta);
        expectBitwiseState(fused.amplitudes(), plain.amplitudes());
    }
}

TEST(FusedLayer, GroupBuilderRejectsOverlappingPairSets)
{
    // u and -u address the same |v>/|v-bar> pair: grouping them would
    // interleave writes to shared amplitudes, so they must split.
    const std::vector<core::CommuteTerm> terms = {
        core::makeCommuteTerm({1, -1}),
        core::makeCommuteTerm({-1, 1}),
    };
    const auto plan = core::buildFusedLayerPlan({}, terms);
    ASSERT_EQ(plan.groups.size(), 2u);

    Rng rng(14);
    const CVec psi = randomState(rng, 2);
    StateVector plain(2), fused(2);
    plain.amplitudes() = psi;
    fused.amplitudes() = psi;
    core::applyCommuteLayer(plain, terms, 0.7);
    core::applyFusedCommuteLayer(fused, plan, 0.7);
    expectBitwiseState(fused.amplitudes(), plain.amplitudes());
}

TEST(FusedLayer, RandomizedLayersAcrossSupportsAreBitIdentical)
{
    Rng rng(15);
    for (int n = 1; n <= 8; ++n) {
        for (int rep = 0; rep < 6; ++rep) {
            // Random move set; duplicates of a support mask exercise
            // grouping, distinct masks exercise the passthrough.
            std::vector<core::CommuteTerm> terms;
            const int count = rng.intIn(1, 6);
            for (int t = 0; t < count; ++t) {
                std::vector<int> u(n, 0);
                int nonzero = 0;
                for (int q = 0; q < n; ++q)
                    if (rng.chance(0.5)) {
                        u[q] = rng.chance(0.5) ? 1 : -1;
                        ++nonzero;
                    }
                if (nonzero == 0)
                    u[rng.intIn(0, n - 1)] = 1;
                terms.push_back(core::makeCommuteTerm(u));
                // Half the time, append a same-support variant.
                if (rng.chance(0.5)) {
                    for (int q = 0; q < n; ++q)
                        if (u[q] != 0 && rng.chance(0.5))
                            u[q] = -u[q];
                    terms.push_back(core::makeCommuteTerm(u));
                }
            }
            std::vector<double> table(std::size_t{1} << n);
            for (auto &v : table)
                v = static_cast<double>(rng.intIn(-4, 5));
            const auto plan = core::buildFusedLayerPlan(table, terms);

            const CVec psi = randomState(rng, n);
            StateVector plain(n), fused(n);
            plain.amplitudes() = psi;
            fused.amplitudes() = psi;
            const double gamma = rng.uniform() * 4 - 2;
            const double beta = rng.uniform() * 4 - 2;
            plain.applyPhaseTable(table, gamma);
            core::applyCommuteLayer(plain, terms, beta);
            std::vector<Cplx> scratch;
            core::applyFusedObjectivePhase(fused, plan, table, gamma,
                                           scratch);
            core::applyFusedCommuteLayer(fused, plan, beta);
            expectBitwiseState(fused.amplitudes(), plain.amplitudes());
        }
    }
}

TEST(FusedLayer, GroupKernelMatchesOnOpenMpPartitioning)
{
    // Grouped sweep vs sequential rotations at several thread counts:
    // the deterministic chunking must keep the bits identical.
    const std::vector<core::CommuteTerm> terms = {
        core::makeCommuteTerm({0, 1, 0, 1, 0, 0, 0, 0, 1, 0}),
        core::makeCommuteTerm({0, 1, 0, -1, 0, 0, 0, 0, 1, 0}),
        core::makeCommuteTerm({0, -1, 0, 1, 0, 0, 0, 0, 1, 0}),
    };
    const auto plan = core::buildFusedLayerPlan({}, terms);
    ASSERT_EQ(plan.groups.size(), 1u);

    Rng rng(16);
    const int n = 10;
    const CVec psi = randomState(rng, n);
    CVec want;
    for (const int threads : {1, 2, 5}) {
        sim::setSimThreads(threads);
        StateVector plain(n), fused(n);
        plain.amplitudes() = psi;
        fused.amplitudes() = psi;
        core::applyCommuteLayer(plain, terms, 1.1);
        core::applyFusedCommuteLayer(fused, plan, 1.1);
        sim::setSimThreads(0);
        expectBitwiseState(fused.amplitudes(), plain.amplitudes());
        if (want.empty())
            want = plain.amplitudes();
    }
}

// ---- solver-level equivalence ----

TEST(ChocoQFusion, FusedSolveIsBitIdenticalOnFunctionalPath)
{
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    core::ChocoQOptions base;
    base.engine.opt.maxIterations = 12;
    base.engine.seed = 99;

    core::ChocoQOptions fused = base;
    fused.engine.fusion = true;
    core::ChocoQOptions plain = base;
    plain.engine.fusion = false;

    const auto fused_out = core::ChocoQSolver(fused).solve(p);
    const auto plain_out = core::ChocoQSolver(plain).solve(p);

    ASSERT_EQ(std::memcmp(&fused_out.bestCost, &plain_out.bestCost,
                          sizeof(double)),
              0);
    ASSERT_EQ(fused_out.distribution.size(), plain_out.distribution.size());
    auto fit = fused_out.distribution.begin();
    auto pit = plain_out.distribution.begin();
    for (; fit != fused_out.distribution.end(); ++fit, ++pit) {
        ASSERT_EQ(fit->first, pit->first);
        ASSERT_EQ(std::memcmp(&fit->second, &pit->second, sizeof(double)),
                  0);
    }
}

TEST(ChocoQFusion, GateLevelLoopMatchesWithinTolerance)
{
    // The circuit path reassociates diagonal products; equivalence is
    // within fp tolerance rather than bitwise.
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    core::ChocoQOptions base;
    base.gateLevelLoop = true;
    base.engine.opt.maxIterations = 6;
    base.engine.seed = 5;

    core::ChocoQOptions fused = base;
    fused.engine.fusion = true;
    core::ChocoQOptions plain = base;
    plain.engine.fusion = false;

    const auto fused_out = core::ChocoQSolver(fused).solve(p);
    const auto plain_out = core::ChocoQSolver(plain).solve(p);
    EXPECT_NEAR(fused_out.bestCost, plain_out.bestCost, 1e-9);
    for (const auto &[x, prob] : fused_out.distribution) {
        const auto it = plain_out.distribution.find(x);
        if (it == plain_out.distribution.end()) {
            EXPECT_LT(prob, 1e-9) << "state " << x;
            continue;
        }
        EXPECT_NEAR(prob, it->second, 1e-9) << "state " << x;
    }
}

TEST(ChocoQFusion, CompileKeySeesFusionFlag)
{
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    core::ChocoQOptions on;
    on.engine.fusion = true;
    core::ChocoQOptions off = on;
    off.engine.fusion = false;
    EXPECT_NE(service::compileKey(p, on), service::compileKey(p, off));
}

TEST(ChocoQFusion, ArtifactsCarryThePlanOnlyWhenFusionIsOn)
{
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    core::ChocoQOptions on;
    on.engine.fusion = true;
    core::ChocoQOptions off = on;
    off.engine.fusion = false;

    const auto with_plan = core::ChocoQSolver(on).compile(p);
    const auto without = core::ChocoQSolver(off).compile(p);
    ASSERT_FALSE(with_plan->subs.empty());
    for (const auto &sub : with_plan->subs) {
        ASSERT_TRUE(sub.fusedPlan);
        EXPECT_EQ(sub.fusedPlan->termCount, sub.terms->size());
        if (sub.fusedPlan->compressedPhase)
            EXPECT_EQ(sub.fusedPlan->valueIndex.size(),
                      sub.costTable->size());
    }
    for (const auto &sub : without->subs)
        EXPECT_FALSE(sub.fusedPlan);
    EXPECT_GT(with_plan->memoryBytes(), without->memoryBytes());
}
