/**
 * @file
 * Unit tests for the common utilities: bit operations, the seeded RNG,
 * table formatting, and allocation accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "common/membytes.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

using namespace chocoq;

TEST(BitOps, GetSetFlip)
{
    Basis x = 0b1010;
    EXPECT_EQ(getBit(x, 0), 0);
    EXPECT_EQ(getBit(x, 1), 1);
    EXPECT_EQ(setBit(x, 0, 1), 0b1011u);
    EXPECT_EQ(setBit(x, 1, 0), 0b1000u);
    EXPECT_EQ(setBit(x, 1, 1), x);
    EXPECT_EQ(flipBit(x, 3), 0b0010u);
    EXPECT_EQ(popcount(x), 2);
}

TEST(BitOps, BitVectorRoundTrip)
{
    const std::vector<int> bits{1, 0, 1, 1, 0};
    const Basis idx = fromBits(bits);
    EXPECT_EQ(idx, 0b01101u);
    EXPECT_EQ(toBits(idx, 5), bits);
}

TEST(BitOps, BitStringMatchesPaperConvention)
{
    // |1010> means x1=1, x2=0, x3=1, x4=0 (paper Fig. 2a solution).
    const Basis idx = fromBits({1, 0, 1, 0});
    EXPECT_EQ(bitString(idx, 4), "1010");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, IntInCoversInclusiveRange)
{
    Rng rng(9);
    std::set<int> seen;
    for (int i = 0; i < 500; ++i) {
        const int v = rng.intIn(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasSaneMoments)
{
    Rng rng(13);
    double sum = 0, sum2 = 0;
    const int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
    EXPECT_NEAR(sum2 / kSamples, 1.0, 0.05);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(17);
    const std::vector<double> w{1.0, 3.0};
    int ones = 0;
    const int kSamples = 10000;
    for (int i = 0; i < kSamples; ++i)
        ones += rng.discrete(w) == 1;
    EXPECT_NEAR(static_cast<double>(ones) / kSamples, 0.75, 0.03);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRule();
    t.addRow({"b", "22222"});
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
    // Every data line has the same width.
    std::size_t width = 0;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t eol = s.find('\n', pos);
        if (eol == std::string::npos)
            break;
        if (width == 0)
            width = eol - pos;
        else
            EXPECT_EQ(eol - pos, width);
        pos = eol + 1;
    }
}

TEST(Table, RowArityMismatchThrows)
{
    Table t({"a", "b"});
    std::vector<std::string> bad{"only-one"};
    EXPECT_THROW(t.addRow(bad), InternalError);
}

TEST(TableFormat, Numbers)
{
    EXPECT_EQ(fmtNum(1.5), "1.5");
    EXPECT_EQ(fmtNum(2.0), "2");
    EXPECT_EQ(fmtNum(0.129, 2), "0.13");
    EXPECT_EQ(fmtPct(0.671, 1), "67.1");
    EXPECT_EQ(fmtPctOrFail(0.0), "x");
    EXPECT_EQ(fmtPctOrFail(0.33), "33");
}

TEST(MemBytes, TracksPeak)
{
    MemBytes::resetPeak();
    const std::size_t before = MemBytes::peak();
    {
        TrackedAlloc a(1 << 20);
        EXPECT_GE(MemBytes::peak(), before + (1 << 20));
        {
            TrackedAlloc b(1 << 20);
            EXPECT_GE(MemBytes::peak(), before + (2 << 20));
        }
    }
    // Peak persists after frees; current drops back.
    EXPECT_GE(MemBytes::peak(), before + (2 << 20));
}

TEST(Timer, MeasuresElapsed)
{
    Timer t;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += std::sqrt(static_cast<double>(i));
    EXPECT_GT(t.seconds(), 0.0);
    EXPECT_EQ(t.seconds() * 1e3 > 0, t.ms() > 0);
}

TEST(Error, FatalCarriesMessage)
{
    try {
        CHOCOQ_FATAL("bad input " << 42);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad input 42"),
                  std::string::npos);
    }
}

TEST(Error, AssertPassesWhenTrue)
{
    EXPECT_NO_THROW(CHOCOQ_ASSERT(1 + 1 == 2, "math works"));
}
