/**
 * @file
 * End-to-end integration tests: Choco-Q and the baselines on real suite
 * instances, checked against the paper's headline claims — 100%
 * in-constraints rate for Choco-Q, high success on small scales, gate-level
 * and functional paths agreeing, and noise degrading (not breaking) runs.
 */

#include <gtest/gtest.h>

#include "core/chocoq_solver.hpp"
#include "device/device.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"
#include "problems/kpp.hpp"
#include "problems/suite.hpp"
#include "solvers/cyclic.hpp"
#include "solvers/hea.hpp"
#include "solvers/penalty.hpp"

using namespace chocoq;

namespace
{

core::ChocoQOptions
quickChoco(int layers = 1, int eliminate = 1)
{
    core::ChocoQOptions opts;
    opts.layers = layers;
    opts.eliminate = eliminate;
    opts.engine.opt.maxIterations = 60;
    return opts;
}

} // namespace

TEST(ChocoQEndToEnd, F1AlwaysInConstraints)
{
    for (unsigned idx = 0; idx < 3; ++idx) {
        const auto p = problems::makeCase(problems::Scale::F1, idx);
        const auto exact = model::solveExact(p);
        ASSERT_TRUE(exact.feasible);
        const core::ChocoQSolver solver(quickChoco());
        const auto run = solver.solve(p);
        const auto stats = metrics::computeStats(p, run.distribution, exact);
        EXPECT_NEAR(stats.inConstraintsRate, 1.0, 1e-9) << p.name();
        EXPECT_GT(stats.successRate, 0.3) << p.name();
    }
}

TEST(ChocoQEndToEnd, K1HighSuccess)
{
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    const auto exact = model::solveExact(p);
    const core::ChocoQSolver solver(quickChoco());
    const auto run = solver.solve(p);
    const auto stats = metrics::computeStats(p, run.distribution, exact);
    EXPECT_NEAR(stats.inConstraintsRate, 1.0, 1e-9);
    EXPECT_GT(stats.successRate, 0.2);
    EXPECT_LT(stats.arg, 1.0);
}

TEST(ChocoQEndToEnd, GateLevelLoopMatchesFastPath)
{
    // The functional pair-rotation path and the Lemma-2 gate path must
    // produce the same distribution for the same parameters.
    const auto p = problems::makeCase(problems::Scale::K1, 1);
    core::ChocoQOptions fast = quickChoco(1, 0);
    // Pin the parameters: a live optimizer would amplify last-ulp
    // differences between the two (unitarily equivalent) paths into
    // different search trajectories.
    fast.engine.opt.maxIterations = 1;
    fast.engine.opt.initialStep = 1e-9;
    fast.engine.theta0 = {0.37, 0.81};
    core::ChocoQOptions gates = fast;
    gates.gateLevelLoop = true;

    const auto run_fast = core::ChocoQSolver(fast).solve(p);
    const auto run_gate = core::ChocoQSolver(gates).solve(p);
    for (const auto &[x, prob] : run_fast.distribution) {
        const auto it = run_gate.distribution.find(x);
        const double other =
            it == run_gate.distribution.end() ? 0.0 : it->second;
        EXPECT_NEAR(prob, other, 1e-6);
    }
}

TEST(ChocoQEndToEnd, EliminationReducesDepth)
{
    const auto p = problems::makeCase(problems::Scale::F2, 0);
    core::ChocoQOptions none = quickChoco(1, 0);
    none.engine.opt.maxIterations = 3;
    core::ChocoQOptions one = quickChoco(1, 1);
    one.engine.opt.maxIterations = 3;
    const auto run0 = core::ChocoQSolver(none).solve(p);
    const auto run1 = core::ChocoQSolver(one).solve(p);
    EXPECT_LT(run1.basisDepth, run0.basisDepth);
    EXPECT_EQ(run1.circuitsPerIteration, 2);
}

TEST(ChocoQEndToEnd, CompileOnlyReportsBasisAndPlan)
{
    const auto p = problems::makeCase(problems::Scale::G1, 0);
    const core::ChocoQSolver solver(quickChoco());
    const auto comp = solver.compileOnly(p);
    EXPECT_TRUE(comp.basis.complete);
    EXPECT_EQ(comp.plan.eliminated.size(), 1u);
    EXPECT_GT(comp.subInstances, 0);
    EXPECT_FALSE(comp.terms.empty());
    EXPECT_GT(comp.seconds, 0.0);
}

TEST(Baselines, PenaltyRunsAndReportsMetrics)
{
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    const auto exact = model::solveExact(p);
    solvers::PenaltyOptions opts;
    opts.layers = 3;
    opts.engine.opt.maxIterations = 30;
    const solvers::PenaltyQaoaSolver solver(opts);
    const auto run = solver.solve(p);
    const auto stats = metrics::computeStats(p, run.distribution, exact);
    // Soft constraints: leakage expected, 100% in-constraints is not.
    EXPECT_LT(stats.inConstraintsRate, 1.0);
    EXPECT_GT(stats.inConstraintsRate, 0.0);
    EXPECT_GT(run.basisDepth, 0);
}

TEST(Baselines, CyclicPreservesDisjointSummationConstraints)
{
    // KPP one-hot rows without balance: disjoint chains conserve each
    // row's excitation number, so outputs stay feasible.
    problems::KppConfig cfg;
    cfg.vertices = 4;
    cfg.blocks = 2;
    cfg.edgeCount = 3;
    cfg.balanced = false;
    Rng rng(5);
    const auto p = problems::makeKpp(cfg, rng);
    solvers::CyclicOptions opts;
    opts.layers = 3;
    opts.engine.opt.maxIterations = 25;
    const solvers::CyclicQaoaSolver solver(opts);
    const auto run = solver.solve(p);
    double feasible = 0.0;
    for (const auto &[x, prob] : run.distribution)
        if (p.isFeasible(x))
            feasible += prob;
    EXPECT_NEAR(feasible, 1.0, 1e-9);
}

TEST(Baselines, CyclicLeaksOnMixedSignConstraints)
{
    // FLP has x - y + s = 0 rows the cyclic Hamiltonian cannot encode.
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    solvers::CyclicOptions opts;
    opts.layers = 3;
    opts.engine.opt.maxIterations = 25;
    const solvers::CyclicQaoaSolver solver(opts);
    const auto run = solver.solve(p);
    double feasible = 0.0;
    for (const auto &[x, prob] : run.distribution)
        if (p.isFeasible(x))
            feasible += prob;
    EXPECT_LT(feasible, 1.0 - 1e-6);
}

TEST(Baselines, HeaRunsOnSmallCase)
{
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    const auto exact = model::solveExact(p);
    solvers::HeaOptions opts;
    opts.layers = 1;
    opts.engine.opt.maxIterations = 25;
    const solvers::HeaSolver solver(opts);
    const auto run = solver.solve(p);
    const auto stats = metrics::computeStats(p, run.distribution, exact);
    EXPECT_GE(stats.inConstraintsRate, 0.0);
    EXPECT_GT(run.basisDepth, 0);
    EXPECT_GT(run.iterations, 0);
}

TEST(Noise, DeviceNoiseDegradesButKeepsMass)
{
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    const auto exact = model::solveExact(p);

    core::ChocoQOptions clean = quickChoco();
    clean.engine.opt.maxIterations = 25;
    const auto run_clean = core::ChocoQSolver(clean).solve(p);
    const auto s_clean = metrics::computeStats(p, run_clean.distribution,
                                               exact);

    core::ChocoQOptions noisy = clean;
    noisy.engine.noise = device::noiseOf(device::osaka());
    noisy.engine.shots = 512;
    noisy.engine.trajectories = 64;
    const auto run_noisy = core::ChocoQSolver(noisy).solve(p);
    const auto s_noisy = metrics::computeStats(p, run_noisy.distribution,
                                               exact);

    double total = 0.0;
    for (const auto &[x, prob] : run_noisy.distribution)
        total += prob;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_LT(s_noisy.inConstraintsRate, s_clean.inConstraintsRate + 1e-9);
}

TEST(Latency, FezFasterThanOsakaAtSameWork)
{
    const auto dev_fez = device::fez();
    const auto dev_osaka = device::osaka();
    const auto lat_fez =
        device::estimateLatency(dev_fez, 300, 30, 1, 1000, 0.4, 0.05);
    const auto lat_osaka =
        device::estimateLatency(dev_osaka, 300, 30, 1, 1000, 0.4, 0.05);
    EXPECT_LT(lat_fez.quantumSeconds, lat_osaka.quantumSeconds);
    EXPECT_GT(lat_fez.total(), lat_fez.compileSeconds);
}

TEST(Metrics, StatsOnHandBuiltDistribution)
{
    const auto p = problems::makeCase(problems::Scale::F1, 0);
    const auto exact = model::solveExact(p);
    std::map<Basis, double> dist;
    dist[exact.optima.front()] = 0.5; // optimal, feasible
    // Find one feasible non-optimal and one infeasible state.
    Basis other = 0;
    for (Basis x = 0; x < (Basis{1} << p.numVars()); ++x) {
        if (p.isFeasible(x)
            && p.minimizedObjectiveOf(x) > exact.optimum + 1e-9) {
            other = x;
            break;
        }
    }
    dist[other] = 0.3;
    Basis bad = 0;
    while (p.isFeasible(bad))
        ++bad;
    dist[bad] = 0.2;
    const auto stats = metrics::computeStats(p, dist, exact);
    EXPECT_NEAR(stats.successRate, 0.5, 1e-12);
    EXPECT_NEAR(stats.inConstraintsRate, 0.8, 1e-12);
    EXPECT_GT(stats.arg, 0.0);
}
