/**
 * @file
 * Tests for variable elimination (Section IV-C).
 */

#include <gtest/gtest.h>

#include "core/chocoq_solver.hpp"
#include "core/eliminate.hpp"
#include "core/movebasis.hpp"
#include "model/exact.hpp"
#include "problems/suite.hpp"

using namespace chocoq;

namespace
{

model::Problem
fig6Problem()
{
    // The paper's Fig. 3/6 running example: x1 - x3 = 0, x1 + x2 + x4 = 1.
    model::Problem p(4, model::Sense::Maximize, "fig6");
    model::Polynomial f;
    f.addTerm({0}, 1.0);
    f.addTerm({1}, 1.0);
    f.addTerm({2}, 1.0);
    f.addTerm({3}, 1.0);
    p.setObjective(std::move(f));
    p.addEquality({1, 0, -1, 0}, 0);
    p.addEquality({1, 1, 0, 1}, 1);
    return p;
}

} // namespace

TEST(Eliminate, PicksVariableMinimizingTotalSupport)
{
    // The paper's rule picks the variable with the most non-zeros across
    // the move set (x2 in Fig. 6, leaving 3 non-zeros); our greedy
    // lookahead optimizes the same depth proxy directly and finds x1,
    // which leaves a single 2-non-zero move — strictly better.
    const auto p = fig6Problem();
    const auto plan = core::chooseElimination(p, 1);
    ASSERT_EQ(plan.eliminated.size(), 1u);
    EXPECT_EQ(plan.eliminated[0], 0);
    EXPECT_EQ(plan.kept, (std::vector<int>{1, 2, 3}));
}

TEST(Eliminate, ZeroCountKeepsEverything)
{
    const auto p = fig6Problem();
    const auto plan = core::chooseElimination(p, 0);
    EXPECT_TRUE(plan.eliminated.empty());
    EXPECT_EQ(plan.kept.size(), 4u);
}

TEST(Eliminate, SubInstancesCoverBothAssignments)
{
    const auto p = fig6Problem();
    const auto plan = core::chooseElimination(p, 1);
    const auto subs = core::buildSubInstances(p, plan);
    // x2 = 0 and x2 = 1 both admit solutions in this system.
    EXPECT_EQ(subs.size(), 2u);
    for (const auto &sub : subs)
        EXPECT_EQ(sub.reduced.numVars(), 3);
}

TEST(Eliminate, ReducedMoveVectorShrinks)
{
    // Fig. 6 reports 5 -> 3 non-zeros after dropping x2; the lookahead
    // pick (x1) does even better: a single move with 2 non-zeros.
    const auto p = fig6Problem();
    const auto plan = core::chooseElimination(p, 1);
    const auto subs = core::buildSubInstances(p, plan);
    ASSERT_FALSE(subs.empty());
    const auto basis = core::computeMoveBasis(subs[0].reduced);
    std::size_t nonzeros = 0;
    for (const auto &u : basis.moves)
        for (int x : u)
            nonzeros += x != 0;
    EXPECT_EQ(nonzeros, 2u);
}

TEST(Eliminate, LiftRoundTrips)
{
    const auto p = fig6Problem();
    const auto plan = core::chooseElimination(p, 1);
    // kept = {0, 2, 3}; reduced bits 0b101 = x0=1, x3=0? (bit0->var0,
    // bit1->var2, bit2->var3), assignment 1 -> eliminated var 1 = 1.
    const Basis full = core::liftToFull(0b101, plan, 1);
    EXPECT_EQ(getBit(full, 0), 1);
    EXPECT_EQ(getBit(full, 1), 1);
    EXPECT_EQ(getBit(full, 2), 0);
    EXPECT_EQ(getBit(full, 3), 1);
}

TEST(Eliminate, LiftedFeasibleStatesSatisfyOriginalConstraints)
{
    // The Sec. IV-C claim: results after elimination strictly satisfy the
    // original constraints.
    for (auto scale : {problems::Scale::F1, problems::Scale::G1,
                       problems::Scale::K1}) {
        const auto p = problems::makeCase(scale, 2);
        const auto plan = core::chooseElimination(p, 2);
        for (const auto &sub : core::buildSubInstances(p, plan)) {
            for (Basis x : model::enumerateFeasible(sub.reduced, 50)) {
                const Basis full = core::liftToFull(x, plan,
                                                    sub.assignment);
                EXPECT_TRUE(p.isFeasible(full)) << p.name();
            }
        }
    }
}

TEST(Eliminate, InconsistentAssignmentsAreDropped)
{
    // x0 + x1 = 2 forces both to 1; eliminating x0 must drop the x0=0
    // branch only after the feasibility search (the zero-row shortcut
    // applies when the row empties).
    model::Problem p(2);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1}, 2);
    core::EliminationPlan plan;
    plan.eliminated = {0};
    plan.kept = {1};
    const auto subs = core::buildSubInstances(p, plan);
    // Both branches survive structurally; the x0=0 branch yields the
    // infeasible row x1 = 2 which findFeasible rejects.
    int feasible = 0;
    for (const auto &sub : subs)
        feasible += model::findFeasible(sub.reduced).has_value();
    EXPECT_EQ(feasible, 1);
}

TEST(Eliminate, EliminationCountCapsAtUsefulVariables)
{
    // Requesting more eliminations than variables that appear in moves
    // stops early instead of failing.
    model::Problem p(3);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 0, 0}, 1); // x0 pinned; moves only touch x1, x2? no:
    // with one constraint of rank 1, moves exist on x1 and x2.
    const auto plan = core::chooseElimination(p, 2);
    EXPECT_LE(plan.eliminated.size(), 2u);
    EXPECT_EQ(plan.eliminated.size() + plan.kept.size(), 3u);
}
