/**
 * @file
 * Observability-subsystem tests: histogram bucket-boundary exactness
 * and quantile readout, counter/histogram correctness under concurrent
 * writers (exercised by the TSan CI job), the registry's JSON shape,
 * the disabled-registry no-op contract, and the per-job Trace's
 * ordering, iteration folding, and idempotent serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace chocoq;

// ----------------------------------------------------------- Histogram

TEST(ObsHistogram, BucketBoundariesAreExactPowers)
{
    // boundary(i) = kMinMs * 2^(i/4), bit-for-bit: the table is built
    // from the same expression, so no float-log rounding at the edges.
    for (std::size_t i = 0; i + 1 < obs::Histogram::kBuckets; ++i) {
        const double expected =
            obs::Histogram::kMinMs
            * std::exp2(static_cast<double>(i)
                        / obs::Histogram::kSubBucketsPerOctave);
        EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(i), expected);
    }
    EXPECT_TRUE(std::isinf(
        obs::Histogram::bucketUpperBound(obs::Histogram::kBuckets - 1)));
}

TEST(ObsHistogram, BoundaryValuesLandDeterministically)
{
    // A value exactly on a boundary belongs to the bucket above it
    // (buckets are [lower, upper)); a value just below stays put.
    for (std::size_t i = 0; i + 1 < obs::Histogram::kBuckets; ++i) {
        const double upper = obs::Histogram::bucketUpperBound(i);
        EXPECT_EQ(obs::Histogram::bucketIndex(upper), i + 1)
            << "boundary " << upper << " must land above bucket " << i;
        const double below =
            std::nextafter(upper, -std::numeric_limits<double>::infinity());
        EXPECT_EQ(obs::Histogram::bucketIndex(below), i)
            << "just below " << upper << " must stay in bucket " << i;
    }
    // Underflow and overflow catch everything outside the range.
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1e308),
              obs::Histogram::kBuckets - 1);
}

TEST(ObsHistogram, QuantilesReadFromBucketCounts)
{
    obs::Histogram h;
    // 98 fast observations, 2 slow: p50 reads the fast bucket's upper
    // bound, p99 and p999 the slow bucket's.
    for (int i = 0; i < 98; ++i)
        h.record(0.5);
    h.record(100.0);
    h.record(100.0);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.minMs, 0.5);
    EXPECT_DOUBLE_EQ(snap.maxMs, 100.0);
    EXPECT_NEAR(snap.sumMs, 98 * 0.5 + 200.0, 1e-9);

    const auto fast_upper =
        obs::Histogram::bucketUpperBound(obs::Histogram::bucketIndex(0.5));
    const auto slow_upper = obs::Histogram::bucketUpperBound(
        obs::Histogram::bucketIndex(100.0));
    EXPECT_DOUBLE_EQ(snap.quantileMs(0.50), fast_upper);
    EXPECT_DOUBLE_EQ(snap.quantileMs(0.99), slow_upper);
    EXPECT_DOUBLE_EQ(snap.quantileMs(0.999), slow_upper);
    // The bucket upper bound is an upper bound on the true quantile,
    // within one sub-bucket (2^(1/4)) of the recorded value.
    EXPECT_GE(snap.quantileMs(0.50), 0.5);
    EXPECT_LE(snap.quantileMs(0.50), 0.5 * std::exp2(0.25) * (1 + 1e-12));
}

TEST(ObsHistogram, EmptySnapshotIsAllZeros)
{
    obs::Histogram h;
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.minMs, 0.0); // not the +infinity seed
    EXPECT_DOUBLE_EQ(snap.maxMs, 0.0);
    EXPECT_DOUBLE_EQ(snap.avgMs(), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantileMs(0.5), 0.0);
    EXPECT_TRUE(snap.buckets.empty());
}

TEST(ObsHistogram, CountEqualsRecordCallsAlways)
{
    obs::Histogram h;
    // Underflow, in-range, boundary, overflow: every record lands in
    // exactly one bucket, so the bucket sum equals the call count.
    const double values[] = {0.0, 1e-9, obs::Histogram::kMinMs, 0.017,
                             1.0, 250.0, 1e5,  1e12};
    for (const double v : values)
        h.record(v);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 8u);
    std::uint64_t bucket_sum = 0;
    for (const auto &[upper, c] : snap.buckets)
        bucket_sum += c;
    EXPECT_EQ(bucket_sum, snap.count);
}

// ---------------------------------------------------------- Concurrency

TEST(ObsConcurrency, CounterIncrementsAreLossFree)
{
    obs::MetricsRegistry registry;
    auto &counter = registry.counter("test.counter");
    constexpr int kThreads = 8;
    constexpr int kIncrements = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i)
                counter.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(ObsConcurrency, HistogramRecordsAreLossFree)
{
    obs::MetricsRegistry registry;
    auto &h = registry.histogram("test.hist");
    constexpr int kThreads = 8;
    constexpr int kRecords = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kRecords; ++i)
                h.record(0.1 * (t + 1));
        });
    for (auto &t : threads)
        t.join();
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(kThreads) * kRecords);
    EXPECT_DOUBLE_EQ(snap.minMs, 0.1);
    EXPECT_DOUBLE_EQ(snap.maxMs, 0.8);
    std::uint64_t bucket_sum = 0;
    for (const auto &[upper, c] : snap.buckets)
        bucket_sum += c;
    EXPECT_EQ(bucket_sum, snap.count);
}

// ------------------------------------------------------------- Registry

TEST(ObsRegistry, LookupReturnsStableReferences)
{
    obs::MetricsRegistry registry;
    auto &a = registry.counter("x");
    auto &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(registry.counter("x").value(), 3u);
}

TEST(ObsRegistry, ToJsonShape)
{
    obs::MetricsRegistry registry;
    registry.counter("b.count").add(2);
    registry.counter("a.count").add(1);
    registry.gauge("depth").set(4.5);
    registry.histogram("lat_ms").record(1.0);

    const auto json = registry.toJson();
    const auto *counters = json.find("counters");
    ASSERT_NE(counters, nullptr);
    // Lexicographic member order, so snapshots diff cleanly.
    ASSERT_EQ(counters->members().size(), 2u);
    EXPECT_EQ(counters->members()[0].first, "a.count");
    EXPECT_EQ(counters->members()[1].first, "b.count");
    EXPECT_DOUBLE_EQ(json.find("gauges")->getNumber("depth", 0.0), 4.5);

    const auto *hist = json.find("histograms")->find("lat_ms");
    ASSERT_NE(hist, nullptr);
    for (const char *key : {"count", "sum_ms", "avg_ms", "min_ms",
                            "max_ms", "p50_ms", "p99_ms", "p999_ms"})
        EXPECT_NE(hist->find(key), nullptr) << key;
    const auto *buckets = hist->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->items().size(), 1u);
    EXPECT_EQ(buckets->items()[0].items().size(), 2u);
}

TEST(ObsRegistry, OverflowBucketSerializesAsSentinel)
{
    obs::MetricsRegistry registry;
    registry.histogram("h").record(1e12); // far beyond kMaxMs
    const auto json = registry.toJson();
    const auto &bucket =
        json.find("histograms")->find("h")->find("buckets")->items()[0];
    // Infinity cannot ride JSON; -1 is the documented sentinel.
    EXPECT_DOUBLE_EQ(bucket.items()[0].asNumber(0.0), -1.0);
    EXPECT_DOUBLE_EQ(bucket.items()[1].asNumber(0.0), 1.0);
}

TEST(ObsRegistry, DisabledRegistryRecordsNothing)
{
    obs::MetricsRegistry registry(/*enabled=*/false);
    EXPECT_FALSE(registry.enabled());
    registry.counter("c").add(10);
    registry.gauge("g").set(5.0);
    registry.gauge("g").add(2.0);
    registry.histogram("h").record(1.0);
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
    EXPECT_EQ(registry.histogram("h").snapshot().count, 0u);
}

// ---------------------------------------------------------------- Trace

TEST(ObsTrace, SpansSortByStartAndKeepParentFirst)
{
    obs::Trace trace(obs::Trace::Clock::now());
    // Recorded out of order; serialization sorts by start offset.
    trace.add("late", 5.0, 1.0);
    trace.add("early", 0.0, 2.0);
    trace.add("mid", 2.0, 3.0);
    // Same start as "mid" but recorded after: stable sort keeps the
    // earlier record first, so a parent span precedes its children.
    trace.add("mid.child", 2.0, 1.0);

    const auto json = trace.toJson();
    const auto &spans = json.find("spans")->items();
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(spans[0].getString("name", ""), "early");
    EXPECT_EQ(spans[1].getString("name", ""), "mid");
    EXPECT_EQ(spans[2].getString("name", ""), "mid.child");
    EXPECT_EQ(spans[3].getString("name", ""), "late");
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_LE(spans[i - 1].getNumber("start_ms", 0.0),
                  spans[i].getNumber("start_ms", 0.0));
}

TEST(ObsTrace, BeginEndNestsInsideEnclosingSpan)
{
    obs::Trace trace(obs::Trace::Clock::now());
    const auto outer = trace.begin("outer");
    const auto inner = trace.begin("inner");
    trace.end(inner, "note-inner");
    trace.end(outer);

    const auto &spans = trace.spans();
    ASSERT_EQ(spans.size(), 2u);
    // Containment: inner starts no earlier and ends no later.
    EXPECT_LE(spans[0].startMs, spans[1].startMs);
    EXPECT_GE(spans[0].startMs + spans[0].durMs,
              spans[1].startMs + spans[1].durMs);
    EXPECT_EQ(spans[1].note, "note-inner");
}

TEST(ObsTrace, IterationMarksFoldIntoOneSpan)
{
    obs::Trace trace(obs::Trace::Clock::now());
    for (int i = 0; i < 1000; ++i)
        trace.markIteration();
    trace.closeIterations();
    ASSERT_EQ(trace.spans().size(), 1u); // not one span per iteration
    EXPECT_EQ(trace.spans()[0].name, "optimize");
    EXPECT_EQ(trace.spans()[0].note, "checkpoints=1000");
    trace.closeIterations(); // idempotent once folded
    EXPECT_EQ(trace.spans().size(), 1u);
}

TEST(ObsTrace, RespondMarkDoesNotMutateTheTimeline)
{
    obs::Trace trace(obs::Trace::Clock::now());
    trace.add("solve", 0.0, 1.0);
    const auto with_mark = trace.toJson(/*mark_respond=*/true);
    EXPECT_EQ(with_mark.find("spans")->items().size(), 2u);
    EXPECT_EQ(with_mark.find("spans")->items()[1].getString("name", ""),
              "respond");
    // Serialization is idempotent: the stored timeline is unchanged,
    // and a second serialization appends exactly one respond mark.
    EXPECT_EQ(trace.spans().size(), 1u);
    EXPECT_EQ(trace.toJson(true).find("spans")->items().size(), 2u);
    EXPECT_EQ(trace.toJson(false).find("spans")->items().size(), 1u);
}
