/**
 * @file
 * Tests for the move-basis (nullspace over {-1,0,1}) computation.
 */

#include <gtest/gtest.h>

#include "core/movebasis.hpp"
#include "model/exact.hpp"
#include "problems/suite.hpp"

using namespace chocoq;

TEST(MoveBasis, SingleSummationConstraint)
{
    // x0 + x1 + x2 = 1: nullspace basis has 2 vectors, e.g. x0 - x1.
    model::Problem p(3);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 1}, 1);
    const auto basis = core::computeMoveBasis(p);
    EXPECT_EQ(basis.rank, 1);
    EXPECT_EQ(basis.moves.size(), 2u);
    EXPECT_TRUE(basis.complete);
    for (const auto &u : basis.moves) {
        EXPECT_TRUE(core::inAlphabet(u));
        EXPECT_TRUE(core::isNullVector(p.constraints(), u));
    }
}

TEST(MoveBasis, MixedSignConstraints)
{
    // The paper's Fig. 3 example: x1 - x3 = 0, x1 + x2 + x4 = 1.
    model::Problem p(4);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 0, -1, 0}, 0);
    p.addEquality({1, 1, 0, 1}, 1);
    const auto basis = core::computeMoveBasis(p);
    EXPECT_EQ(basis.rank, 2);
    EXPECT_EQ(basis.moves.size(), 2u);
    for (const auto &u : basis.moves) {
        EXPECT_TRUE(core::inAlphabet(u));
        EXPECT_TRUE(core::isNullVector(p.constraints(), u));
    }
}

TEST(MoveBasis, FullRankSystemHasNoMoves)
{
    // x0 = 1, x1 = 0: the solution is unique, no mixing needed.
    model::Problem p(2);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 0}, 1);
    p.addEquality({0, 1}, 0);
    const auto basis = core::computeMoveBasis(p);
    EXPECT_EQ(basis.rank, 2);
    EXPECT_TRUE(basis.moves.empty());
}

TEST(MoveBasis, UnconstrainedGivesSingleFlips)
{
    const auto basis = core::computeMoveBasis({}, 3);
    EXPECT_EQ(basis.moves.size(), 3u);
    for (const auto &u : basis.moves) {
        int nz = 0;
        for (int x : u)
            nz += x != 0;
        EXPECT_EQ(nz, 1);
    }
}

TEST(MoveBasis, RedundantConstraintDoesNotShrinkBasis)
{
    // Duplicate rows must not change rank.
    model::Problem p(3);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 0}, 1);
    p.addEquality({1, 1, 0}, 1);
    const auto basis = core::computeMoveBasis(p);
    EXPECT_EQ(basis.rank, 1);
    EXPECT_EQ(basis.moves.size(), 2u);
}

/** Every suite scale yields a complete alphabet-compliant basis with
 * n - rank vectors, and moves connect feasible states to feasible states. */
class SuiteMoveBasis
    : public ::testing::TestWithParam<chocoq::problems::Scale>
{
};

TEST_P(SuiteMoveBasis, BasisIsCompleteAndNullAndSized)
{
    const auto p = problems::makeCase(GetParam(), 0);
    const auto basis = core::computeMoveBasis(p);
    EXPECT_TRUE(basis.complete) << p.name();
    EXPECT_EQ(static_cast<int>(basis.moves.size()),
              p.numVars() - basis.rank)
        << p.name();
    for (const auto &u : basis.moves) {
        EXPECT_TRUE(core::inAlphabet(u));
        EXPECT_TRUE(core::isNullVector(p.constraints(), u));
    }
}

TEST_P(SuiteMoveBasis, MovesMapFeasibleToFeasible)
{
    const auto p = problems::makeCase(GetParam(), 1);
    const auto basis = core::computeMoveBasis(p);
    const auto x0 = model::findFeasible(p);
    ASSERT_TRUE(x0.has_value()) << p.name();
    // Applying a move (where applicable: v-pattern matches) keeps
    // feasibility: x' = x XOR support when x matches v or v-bar.
    for (const auto &u : basis.moves) {
        Basis support = 0, v = 0;
        for (std::size_t i = 0; i < u.size(); ++i) {
            if (u[i] == 0)
                continue;
            support |= Basis{1} << i;
            if (u[i] > 0)
                v |= Basis{1} << i;
        }
        const Basis on_support = *x0 & support;
        if (on_support == v || on_support == (v ^ support)) {
            const Basis moved = *x0 ^ support;
            EXPECT_TRUE(p.isFeasible(moved)) << p.name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllScales, SuiteMoveBasis,
    ::testing::ValuesIn(chocoq::problems::allScales()),
    [](const ::testing::TestParamInfo<chocoq::problems::Scale> &info) {
        return chocoq::problems::scaleName(info.param);
    });

TEST(ExpandMoveSet, ContainsBasisAndOnlyNullVectors)
{
    model::Problem p(4);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 1, 1}, 2);
    const auto basis = core::computeMoveBasis(p);
    const auto moves = core::expandMoveSet(basis, p.constraints(), 100);
    EXPECT_GE(moves.size(), basis.moves.size());
    for (const auto &u : moves) {
        EXPECT_TRUE(core::inAlphabet(u));
        EXPECT_TRUE(core::isNullVector(p.constraints(), u));
    }
}

TEST(ExpandMoveSet, DeduplicatesUpToSign)
{
    model::Problem p(3);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 1}, 1);
    const auto basis = core::computeMoveBasis(p);
    const auto moves = core::expandMoveSet(basis, p.constraints(), 100);
    for (std::size_t i = 0; i < moves.size(); ++i) {
        for (std::size_t j = i + 1; j < moves.size(); ++j) {
            bool same = true, negated = true;
            for (std::size_t k = 0; k < moves[i].size(); ++k) {
                same = same && moves[i][k] == moves[j][k];
                negated = negated && moves[i][k] == -moves[j][k];
            }
            EXPECT_FALSE(same || negated);
        }
    }
}

TEST(ExpandMoveSet, RespectsCap)
{
    model::Problem p(6);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 1, 1, 1, 1}, 3);
    const auto basis = core::computeMoveBasis(p);
    const auto moves = core::expandMoveSet(basis, p.constraints(), 7);
    EXPECT_LE(moves.size(), 7u);
    EXPECT_GE(moves.size(), basis.moves.size());
}

TEST(ExpandMoveSet, FullEnumerationCoversSingleConstraintSwaps)
{
    // x0+x1+x2=1: ALL alphabet null vectors are the 3 pairwise swaps.
    model::Problem p(3);
    p.setObjective(model::Polynomial::variable(0));
    p.addEquality({1, 1, 1}, 1);
    const auto basis = core::computeMoveBasis(p);
    const auto moves = core::expandMoveSet(basis, p.constraints(), 100);
    EXPECT_EQ(moves.size(), 3u); // (e0-e1), (e0-e2), (e1-e2) up to sign
}
