/**
 * @file
 * Differential property suite for the SoA batched evolution path.
 *
 * The contract under test: BatchedStateVector interleaves B start-lanes
 * amplitude-major and processes them inside one pass of index
 * arithmetic, but every lane's per-amplitude expression tree, kernel
 * enumeration order, and reduction partitioning are exactly the scalar
 * StateVector's — so batched evolution, per-lane expectations, and the
 * lockstep racing optimizer driver are all byte-for-byte identical to
 * the sequential path, for every batch width.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/commute.hpp"
#include "core/layer_fusion.hpp"
#include "core/qaoa.hpp"
#include "sim/batched.hpp"
#include "sim/parallel.hpp"
#include "sim/statevector.hpp"

using namespace chocoq;
using linalg::Cplx;
using linalg::CVec;
using sim::BatchedStateVector;
using sim::StateVector;

namespace
{

constexpr std::size_t kWidths[] = {1, 2, 4, 8};

CVec
randomState(Rng &rng, int n)
{
    CVec psi(std::size_t{1} << n);
    double norm2 = 0;
    for (auto &a : psi) {
        a = Cplx{rng.normal(), rng.normal()};
        norm2 += std::norm(a);
    }
    for (auto &a : psi)
        a /= std::sqrt(norm2);
    return psi;
}

void
expectLaneBitwiseEqual(const BatchedStateVector &batch, std::size_t lane,
                       const CVec &want)
{
    CVec got;
    batch.copyLane(lane, got);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                             want.size() * sizeof(Cplx)))
        << "lane " << lane;
}

/** A small Choco-Q-shaped layer problem: cost table + commute terms. */
struct LayerProblem
{
    int n = 0;
    Basis x0 = 0;
    std::vector<double> table;
    std::vector<core::CommuteTerm> terms;
    core::FusedLayerPlan plan;
};

LayerProblem
randomLayerProblem(Rng &rng, int n)
{
    LayerProblem p;
    p.n = n;
    const std::size_t dim = std::size_t{1} << n;
    p.x0 = rng.intIn(0, static_cast<int>(dim) - 1);
    p.table.resize(dim);
    // A handful of distinct values, like integer-coefficient objectives.
    for (auto &v : p.table)
        v = static_cast<double>(rng.intIn(-4, 4)) * 0.75;
    const int nterms = rng.intIn(1, 2 * n);
    for (int t = 0; t < nterms; ++t) {
        std::vector<int> move(static_cast<std::size_t>(n), 0);
        int weight = 0;
        while (weight == 0)
            for (int q = 0; q < n; ++q) {
                move[static_cast<std::size_t>(q)] = rng.intIn(-1, 1);
                if (move[static_cast<std::size_t>(q)] != 0)
                    ++weight;
            }
        p.terms.push_back(core::makeCommuteTerm(move));
    }
    p.plan = core::buildFusedLayerPlan(p.table, p.terms);
    return p;
}

std::vector<std::vector<double>>
randomThetas(Rng &rng, std::size_t count, std::size_t layers)
{
    std::vector<std::vector<double>> thetas(count);
    for (auto &t : thetas)
        for (std::size_t l = 0; l < 2 * layers; ++l)
            t.push_back(rng.uniform(-3.0, 3.0));
    return thetas;
}

/** Scalar reference evolution (unfused kernels). */
CVec
scalarEvolve(const LayerProblem &p, const std::vector<double> &theta)
{
    StateVector sv(p.n);
    sv.reset(p.x0);
    for (std::size_t l = 0; l < theta.size() / 2; ++l) {
        sv.applyPhaseTable(p.table, theta[2 * l]);
        core::applyCommuteLayer(sv, p.terms, theta[2 * l + 1]);
    }
    return sv.amplitudes();
}

/** Scalar reference evolution (fused phased-group path). */
CVec
scalarEvolveFused(const LayerProblem &p, const std::vector<double> &theta)
{
    StateVector sv(p.n);
    sv.reset(p.x0);
    std::vector<Cplx> scratch;
    for (std::size_t l = 0; l < theta.size() / 2; ++l)
        core::applyFusedLayer(sv, p.plan, p.table, theta[2 * l],
                              theta[2 * l + 1], scratch);
    return sv.amplitudes();
}

/** Fixture parameterized over the kernel thread count. */
class Batch : public ::testing::TestWithParam<int>
{
  protected:
    void SetUp() override { sim::setSimThreads(GetParam()); }
    void TearDown() override { sim::setSimThreads(0); }
};

TEST_P(Batch, UnfusedEvolutionBitwiseAcrossWidths)
{
    Rng rng(101);
    for (int trial = 0; trial < 12; ++trial) {
        const auto p = randomLayerProblem(rng, rng.intIn(3, 8));
        const std::size_t layers = static_cast<std::size_t>(rng.intIn(1, 4));
        BatchedStateVector batch;
        std::vector<double> cs_scratch;
        for (const std::size_t width : kWidths) {
            const auto thetas = randomThetas(rng, width, layers);
            batch.resizeScratch(p.n, width);
            batch.reset(p.x0);
            std::vector<double> gammas(width), betas(width);
            for (std::size_t l = 0; l < layers; ++l) {
                for (std::size_t b = 0; b < width; ++b) {
                    gammas[b] = thetas[b][2 * l];
                    betas[b] = thetas[b][2 * l + 1];
                }
                batch.applyPhaseTable(p.table, gammas.data());
                core::applyCommuteLayerBatched(batch, p.terms, betas.data(),
                                               cs_scratch);
            }
            for (std::size_t b = 0; b < width; ++b)
                expectLaneBitwiseEqual(batch, b, scalarEvolve(p, thetas[b]));
        }
    }
}

TEST_P(Batch, FusedEvolutionBitwiseAcrossWidths)
{
    Rng rng(103);
    for (int trial = 0; trial < 12; ++trial) {
        const auto p = randomLayerProblem(rng, rng.intIn(3, 8));
        const std::size_t layers = static_cast<std::size_t>(rng.intIn(1, 4));
        BatchedStateVector batch;
        std::vector<Cplx> phase_scratch;
        std::vector<double> cs_scratch;
        for (const std::size_t width : kWidths) {
            const auto thetas = randomThetas(rng, width, layers);
            batch.resizeScratch(p.n, width);
            batch.reset(p.x0);
            std::vector<double> gammas(width), betas(width);
            for (std::size_t l = 0; l < layers; ++l) {
                for (std::size_t b = 0; b < width; ++b) {
                    gammas[b] = thetas[b][2 * l];
                    betas[b] = thetas[b][2 * l + 1];
                }
                core::applyFusedLayerBatched(batch, p.plan, p.table,
                                             gammas.data(), betas.data(),
                                             phase_scratch, cs_scratch);
            }
            for (std::size_t b = 0; b < width; ++b) {
                // The fused scalar path is itself bit-identical to the
                // unfused scalar path; both references must match.
                const CVec want = scalarEvolveFused(p, thetas[b]);
                const CVec unfused = scalarEvolve(p, thetas[b]);
                ASSERT_EQ(0, std::memcmp(want.data(), unfused.data(),
                                         want.size() * sizeof(Cplx)));
                expectLaneBitwiseEqual(batch, b, want);
            }
        }
    }
}

TEST_P(Batch, PerLaneExpectationsBitwiseMatchScalar)
{
    Rng rng(107);
    for (int trial = 0; trial < 10; ++trial) {
        const auto p = randomLayerProblem(rng, rng.intIn(3, 8));
        for (const std::size_t width : kWidths) {
            BatchedStateVector batch;
            batch.resizeScratch(p.n, width);
            std::vector<CVec> lanes(width);
            StateVector sv(p.n);
            for (std::size_t b = 0; b < width; ++b) {
                lanes[b] = randomState(rng, p.n);
                batch.loadLane(b, lanes[b]);
            }
            std::vector<double> got(width);
            batch.expectationTable(p.table, got.data());
            for (std::size_t b = 0; b < width; ++b) {
                sv.amplitudes() = lanes[b];
                const double want = sv.expectationTable(p.table);
                ASSERT_EQ(0, std::memcmp(&got[b], &want, sizeof(double)));
            }
            ASSERT_TRUE(p.plan.compressedPhase);
            batch.expectationTableCompressed(p.plan.distinctValues,
                                             p.plan.valueIndex, got.data());
            for (std::size_t b = 0; b < width; ++b) {
                sv.amplitudes() = lanes[b];
                const double want = sv.expectationTableCompressed(
                    p.plan.distinctValues, p.plan.valueIndex);
                const double expanded = sv.expectationTable(p.table);
                ASSERT_EQ(0, std::memcmp(&want, &expanded, sizeof(double)));
                ASSERT_EQ(0, std::memcmp(&got[b], &want, sizeof(double)));
            }
            const auto f = [&](Basis x) { return p.table[x] * 0.5 - 1.0; };
            batch.expectationDiagonal(f, got.data());
            for (std::size_t b = 0; b < width; ++b) {
                sv.amplitudes() = lanes[b];
                const double want = sv.expectationDiagonal(f);
                ASSERT_EQ(0, std::memcmp(&got[b], &want, sizeof(double)));
            }
        }
    }
}

// ------------------------------------------- racing optimizer driver

/** SubRun over a layer problem with scalar + SoA evolution closures. */
core::SubRun
makeSubRun(const LayerProblem &p)
{
    core::SubRun run;
    run.numQubits = p.n;
    run.init = p.x0;
    run.costTable = std::make_shared<const std::vector<double>>(p.table);
    run.build = [&p](const std::vector<double> &) {
        return circuit::Circuit(p.n);
    };
    run.evolve = [&p](StateVector &state, const std::vector<double> &theta) {
        state.reset(p.x0);
        for (std::size_t l = 0; l < theta.size() / 2; ++l) {
            state.applyPhaseTable(p.table, theta[2 * l]);
            core::applyCommuteLayer(state, p.terms, theta[2 * l + 1]);
        }
    };
    run.evolveBatch =
        [&p](BatchedStateVector &batch,
             const std::vector<const std::vector<double> *> &thetas) {
            batch.reset(p.x0);
            const std::size_t lanes = batch.lanes();
            std::vector<double> gammas(lanes), betas(lanes), cs;
            for (std::size_t l = 0; l < thetas[0]->size() / 2; ++l) {
                for (std::size_t b = 0; b < lanes; ++b) {
                    gammas[b] = (*thetas[b])[2 * l];
                    betas[b] = (*thetas[b])[2 * l + 1];
                }
                batch.applyPhaseTable(p.table, gammas.data());
                core::applyCommuteLayerBatched(batch, p.terms, betas.data(),
                                               cs);
            }
        };
    run.lift = [](Basis x) { return x; };
    return run;
}

core::EngineOptions
racingOptions(const std::string &optimizer)
{
    core::EngineOptions opts;
    opts.optimizer = optimizer;
    opts.theta0 = {0.4, 0.7, 1.1, 0.3};
    opts.extraStarts = {{0.8, 2.2, 0.2, 1.4},
                        {2.4, 1.2, 2.8, 0.6},
                        {1.2, 3.0, 0.9, 2.1},
                        {0.1, 0.5, 1.7, 2.9}};
    opts.opt.maxIterations = 15;
    opts.seed = 99;
    return opts;
}

void
expectSameEngineResult(const core::EngineResult &a,
                       const core::EngineResult &b)
{
    ASSERT_EQ(a.opt.best.size(), b.opt.best.size());
    ASSERT_EQ(0, std::memcmp(a.opt.best.data(), b.opt.best.data(),
                             a.opt.best.size() * sizeof(double)));
    ASSERT_EQ(0, std::memcmp(&a.opt.bestValue, &b.opt.bestValue,
                             sizeof(double)));
    ASSERT_EQ(a.opt.evaluations, b.opt.evaluations);
    ASSERT_EQ(a.opt.iterations, b.opt.iterations);
    ASSERT_EQ(a.distribution.size(), b.distribution.size());
    auto it_a = a.distribution.begin();
    auto it_b = b.distribution.begin();
    for (; it_a != a.distribution.end(); ++it_a, ++it_b) {
        ASSERT_EQ(it_a->first, it_b->first);
        ASSERT_EQ(0, std::memcmp(&it_a->second, &it_b->second,
                                 sizeof(double)));
    }
}

class BatchOptimizer : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BatchOptimizer, FinalOutputsBitwiseAcrossWidths)
{
    Rng rng(211);
    const auto p = randomLayerProblem(rng, 5);
    const core::SubRun run = makeSubRun(p);
    const auto cost = [&p](Basis x) { return p.table[x]; };

    core::EngineOptions base = racingOptions(GetParam());
    base.batchWidth = 1;
    const auto reference = core::runQaoa({run}, cost, base);
    for (const std::size_t width : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
        core::EngineOptions opts = base;
        opts.batchWidth = static_cast<int>(width);
        expectSameEngineResult(reference, core::runQaoa({run}, cost, opts));
    }
}

TEST_P(BatchOptimizer, EliminationDeterministicAcrossWidths)
{
    Rng rng(223);
    const auto p = randomLayerProblem(rng, 5);
    const core::SubRun run = makeSubRun(p);
    const auto cost = [&p](Basis x) { return p.table[x]; };

    core::EngineOptions base = racingOptions(GetParam());
    base.raceEliminateEvery = 3;
    base.batchWidth = 1;
    const auto reference = core::runQaoa({run}, cost, base);
    for (const std::size_t width : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
        core::EngineOptions opts = base;
        opts.batchWidth = static_cast<int>(width);
        expectSameEngineResult(reference, core::runQaoa({run}, cost, opts));
    }
    // Racing must cost strictly fewer evaluations than running every
    // start to completion.
    core::EngineOptions full = racingOptions(GetParam());
    full.batchWidth = 1;
    const auto exhaustive = core::runQaoa({run}, cost, full);
    EXPECT_LT(reference.opt.evaluations, exhaustive.opt.evaluations);
    // The racing winner can never beat the exhaustive winner (it is a
    // subset of the same work), and the kept half must contain it here.
    EXPECT_GE(reference.opt.bestValue, exhaustive.opt.bestValue);
}

TEST_P(BatchOptimizer, CheckpointNeverPerturbsLockstepResults)
{
    Rng rng(227);
    const auto p = randomLayerProblem(rng, 4);
    const core::SubRun run = makeSubRun(p);
    const auto cost = [&p](Basis x) { return p.table[x]; };

    core::EngineOptions plain = racingOptions(GetParam());
    plain.batchWidth = 8;
    plain.raceEliminateEvery = 2;
    const auto reference = core::runQaoa({run}, cost, plain);

    core::EngineOptions hooked = plain;
    int calls = 0;
    hooked.checkpoint = [&calls] { ++calls; };
    expectSameEngineResult(reference, core::runQaoa({run}, cost, hooked));
    EXPECT_GT(calls, 0);
}

TEST_P(BatchOptimizer, CancellationMidBatchPropagates)
{
    Rng rng(229);
    const auto p = randomLayerProblem(rng, 4);
    const core::SubRun run = makeSubRun(p);
    const auto cost = [&p](Basis x) { return p.table[x]; };

    // Count checkpoints on an unhooked run first, then cancel halfway:
    // the throw must surface from inside the lockstep sweep.
    core::EngineOptions probe = racingOptions(GetParam());
    probe.batchWidth = 8;
    int total = 0;
    probe.checkpoint = [&total] { ++total; };
    (void)core::runQaoa({run}, cost, probe);
    ASSERT_GT(total, 2);

    core::EngineOptions cancel = probe;
    int calls = 0;
    const int limit = total / 2;
    cancel.checkpoint = [&calls, limit] {
        if (++calls >= limit)
            throw std::runtime_error("cancelled");
    };
    EXPECT_THROW((void)core::runQaoa({run}, cost, cancel),
                 std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Optimizers, BatchOptimizer,
                         ::testing::Values("cobyla", "nelder-mead", "spsa"));

INSTANTIATE_TEST_SUITE_P(ThreadCounts, Batch, ::testing::Values(1, 3));

} // namespace
