/**
 * @file
 * Tests for the problem model: multilinear polynomial algebra, constraint
 * handling, penalty expansion, and the exact reference solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "model/exact.hpp"
#include "model/polynomial.hpp"
#include "model/problem.hpp"

using namespace chocoq;
using model::LinearConstraint;
using model::Polynomial;
using model::Problem;
using model::Sense;

TEST(Polynomial, ConstantAndVariable)
{
    const auto c = Polynomial::constant(3.5);
    EXPECT_DOUBLE_EQ(c.evaluate(0b101), 3.5);
    const auto x = Polynomial::variable(2, 2.0);
    EXPECT_DOUBLE_EQ(x.evaluate(0b100), 2.0);
    EXPECT_DOUBLE_EQ(x.evaluate(0b011), 0.0);
}

TEST(Polynomial, AdditionMergesAndCancels)
{
    Polynomial p;
    p.addTerm({0, 1}, 2.0);
    p.addTerm({1, 0}, -2.0); // unsorted on purpose; must merge and cancel
    EXPECT_EQ(p.size(), 0u);
}

TEST(Polynomial, MultiplicationIsIdempotentOnVariables)
{
    // (x0 + x1)^2 = x0 + x1 + 2 x0 x1 since x^2 = x.
    Polynomial s;
    s.addTerm({0}, 1.0);
    s.addTerm({1}, 1.0);
    const Polynomial sq = s * s;
    EXPECT_DOUBLE_EQ(sq.terms().at({0}), 1.0);
    EXPECT_DOUBLE_EQ(sq.terms().at({1}), 1.0);
    EXPECT_DOUBLE_EQ(sq.terms().at({0, 1}), 2.0);
}

TEST(Polynomial, EvaluateMatchesExpansion)
{
    Polynomial p;
    p.addTerm({}, 1.0);
    p.addTerm({0}, -2.0);
    p.addTerm({0, 2}, 4.0);
    EXPECT_DOUBLE_EQ(p.evaluate(0b000), 1.0);
    EXPECT_DOUBLE_EQ(p.evaluate(0b001), -1.0);
    EXPECT_DOUBLE_EQ(p.evaluate(0b101), 3.0);
}

TEST(Polynomial, SubstituteEliminatesVariable)
{
    Polynomial p;
    p.addTerm({0, 1}, 3.0);
    p.addTerm({1}, 1.0);
    const Polynomial p1 = p.substitute(0, 1);
    EXPECT_DOUBLE_EQ(p1.evaluate(0b10), 4.0);
    const Polynomial p0 = p.substitute(0, 0);
    EXPECT_DOUBLE_EQ(p0.evaluate(0b10), 1.0);
}

TEST(Polynomial, RemappedRenumbersVariables)
{
    Polynomial p;
    p.addTerm({1, 3}, 2.0);
    const std::vector<int> new_of{-1, 0, -1, 1};
    const Polynomial q = p.remapped(new_of);
    EXPECT_DOUBLE_EQ(q.terms().at({0, 1}), 2.0);
}

TEST(Polynomial, DegreeAndMaxVar)
{
    Polynomial p;
    EXPECT_EQ(p.degree(), 0);
    EXPECT_EQ(p.maxVar(), -1);
    p.addTerm({4}, 1.0);
    p.addTerm({0, 2, 5}, 1.0);
    EXPECT_EQ(p.degree(), 3);
    EXPECT_EQ(p.maxVar(), 5);
}

TEST(Polynomial, StrIsReadable)
{
    Polynomial p;
    p.addTerm({}, 3.0);
    p.addTerm({0, 2}, 2.0);
    p.addTerm({1}, -1.0);
    const std::string s = p.str();
    EXPECT_NE(s.find("3"), std::string::npos);
    EXPECT_NE(s.find("x0*x2"), std::string::npos);
    EXPECT_NE(s.find("- x1"), std::string::npos);
}

TEST(Constraint, LhsAndSatisfied)
{
    LinearConstraint con{{1, -1, 2}, 1};
    EXPECT_EQ(con.lhs(0b001), 1);
    EXPECT_TRUE(con.satisfied(0b001));
    EXPECT_EQ(con.lhs(0b111), 2);
    EXPECT_FALSE(con.satisfied(0b111));
}

TEST(Constraint, SummationFormatDetection)
{
    EXPECT_TRUE((LinearConstraint{{1, 1, 0, 1}, 2}).isSummationFormat());
    EXPECT_TRUE((LinearConstraint{{-1, -1, 0}, -1}).isSummationFormat());
    EXPECT_FALSE((LinearConstraint{{1, -1, 0}, 0}).isSummationFormat());
    EXPECT_FALSE((LinearConstraint{{2, 1}, 1}).isSummationFormat());
    EXPECT_FALSE((LinearConstraint{{0, 0}, 0}).isSummationFormat());
}

TEST(ProblemModel, PaperFig2Example)
{
    // max 3 x1 + 2 x2 + x3 + x4 s.t. x1 - x3 = 0, x1 + x2 + x4 = 1;
    // optimal solution {1, 0, 1, 0} (paper Sec. II-A).
    Problem p(4, Sense::Maximize, "fig2");
    Polynomial f;
    f.addTerm({0}, 3.0);
    f.addTerm({1}, 2.0);
    f.addTerm({2}, 1.0);
    f.addTerm({3}, 1.0);
    p.setObjective(std::move(f));
    p.addEquality({1, 0, -1, 0}, 0);
    p.addEquality({1, 1, 0, 1}, 1);

    const auto exact = model::solveExact(p);
    ASSERT_TRUE(exact.feasible);
    ASSERT_EQ(exact.optima.size(), 1u);
    EXPECT_EQ(bitString(exact.optima[0], 4), "1010");
    EXPECT_DOUBLE_EQ(exact.optimumRaw, 4.0);
    EXPECT_DOUBLE_EQ(exact.optimum, -4.0); // minimization form
}

TEST(ProblemModel, ViolationCountsAbsoluteGaps)
{
    Problem p(2);
    p.setObjective(Polynomial::variable(0));
    p.addEquality({1, 1}, 1);
    p.addEquality({1, -1}, 0);
    EXPECT_EQ(p.violation(0b00), 1);
    EXPECT_EQ(p.violation(0b11), 1);
    EXPECT_EQ(p.violation(0b01), 1);
    EXPECT_TRUE(p.isFeasible(0b01) == false);
}

TEST(ProblemModel, PenaltyPolynomialZeroOnFeasible)
{
    Problem p(3);
    Polynomial f;
    f.addTerm({0}, 2.0);
    p.setObjective(std::move(f));
    p.addEquality({1, 1, 1}, 1);
    const Polynomial pen = p.penaltyPolynomial(10.0);
    for (Basis x = 0; x < 8; ++x) {
        const double expect =
            p.minimizedObjectiveOf(x)
            + 10.0 * std::pow(p.constraints()[0].lhs(x) - 1, 2);
        EXPECT_NEAR(pen.evaluate(x), expect, 1e-12);
    }
}

TEST(ProblemModel, InequalitySlackAddsVariable)
{
    Problem p(2);
    p.setObjective(Polynomial::variable(0));
    const int slack = p.addInequalityWithSlack({1, 1}, 1); // x0 + x1 <= 1
    EXPECT_EQ(slack, 2);
    EXPECT_EQ(p.numVars(), 3);
    // x0 = x1 = 0 requires s = 1.
    EXPECT_TRUE(p.isFeasible(0b100));
    EXPECT_FALSE(p.isFeasible(0b000));
    EXPECT_TRUE(p.isFeasible(0b001));
    EXPECT_FALSE(p.isFeasible(0b011));
}

TEST(ProblemModel, RejectsBadInput)
{
    Problem p(2);
    Polynomial f;
    f.addTerm({5}, 1.0);
    EXPECT_THROW(p.setObjective(f), FatalError);
    std::vector<int> zeros{0, 0};
    EXPECT_THROW(p.addEquality(zeros, 1), FatalError);
    std::vector<int> toolong{1, 1, 1};
    EXPECT_THROW(p.addEquality(toolong, 1), FatalError);
}

TEST(ExactSolver, EnumeratesAllOptima)
{
    // Symmetric problem: pick exactly one of two variables, equal cost.
    Problem p(2);
    Polynomial f;
    f.addTerm({0}, 1.0);
    f.addTerm({1}, 1.0);
    p.setObjective(std::move(f));
    p.addEquality({1, 1}, 1);
    const auto exact = model::solveExact(p);
    EXPECT_EQ(exact.optima.size(), 2u);
    EXPECT_EQ(exact.feasibleCount, 2u);
    EXPECT_DOUBLE_EQ(exact.optimum, 1.0);
}

TEST(ExactSolver, InfeasibleSystem)
{
    Problem p(2);
    p.setObjective(Polynomial::variable(0));
    p.addEquality({1, 1}, 5); // unreachable
    const auto exact = model::solveExact(p);
    EXPECT_FALSE(exact.feasible);
    EXPECT_FALSE(model::findFeasible(p).has_value());
}

TEST(ExactSolver, FindFeasibleSatisfiesConstraints)
{
    Problem p(6);
    p.setObjective(Polynomial::variable(0));
    p.addEquality({1, 1, 1, 0, 0, 0}, 2);
    p.addEquality({0, 0, 1, 1, 1, 0}, 1);
    const auto x = model::findFeasible(p);
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(p.isFeasible(*x));
}

TEST(ExactSolver, EnumerateFeasibleRespectsLimit)
{
    Problem p(4);
    p.setObjective(Polynomial::variable(0));
    p.addEquality({1, 1, 1, 1}, 2); // C(4,2) = 6 solutions
    EXPECT_EQ(model::enumerateFeasible(p, 100).size(), 6u);
    EXPECT_EQ(model::enumerateFeasible(p, 3).size(), 3u);
}

TEST(ExactSolver, MaximizationFlipsSign)
{
    Problem p(2, Sense::Maximize);
    Polynomial f;
    f.addTerm({0}, 5.0);
    f.addTerm({1}, 1.0);
    p.setObjective(std::move(f));
    p.addEquality({1, 1}, 1);
    const auto exact = model::solveExact(p);
    EXPECT_EQ(exact.optima.front(), 0b01u);
    EXPECT_DOUBLE_EQ(exact.optimumRaw, 5.0);
}

TEST(ExactSolver, PruningStillFindsInteriorSolutions)
{
    // Constraint that requires a mix of early and late variables.
    Problem p(10);
    Polynomial f;
    for (int i = 0; i < 10; ++i)
        f.addTerm({i}, i + 1);
    p.setObjective(std::move(f));
    std::vector<int> coeffs(10, 0);
    coeffs[0] = 1;
    coeffs[9] = -1;
    p.addEquality(coeffs, 0); // x0 == x9
    const auto exact = model::solveExact(p);
    EXPECT_TRUE(exact.feasible);
    EXPECT_EQ(exact.feasibleCount, 512u); // half the cube
    EXPECT_DOUBLE_EQ(exact.optimum, 0.0);
}
