/**
 * @file
 * Property tests for the subspace-enumeration fast kernels: every masked
 * kernel must be amplitude-exact (1e-12) against a naive full-scan
 * reference on random states, random masks, and random angles — on the
 * serial path and on the OpenMP path (multiple thread counts, which also
 * pins down the deterministic partitioning).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/commute.hpp"
#include "sim/batched.hpp"
#include "sim/naive.hpp"
#include "sim/parallel.hpp"
#include "sim/statevector.hpp"
#include "sim/subspace.hpp"

using namespace chocoq;
using linalg::Cplx;
using linalg::CVec;
using sim::StateVector;

namespace
{

constexpr double kTol = 1e-12;

CVec
randomState(Rng &rng, int n)
{
    CVec psi(std::size_t{1} << n);
    double norm2 = 0;
    for (auto &a : psi) {
        a = Cplx{rng.normal(), rng.normal()};
        norm2 += std::norm(a);
    }
    for (auto &a : psi)
        a /= std::sqrt(norm2);
    return psi;
}

void
loadState(StateVector &sv, const CVec &psi)
{
    sv.amplitudes() = psi;
}

void
expectSameState(const CVec &got, const CVec &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].real(), want[i].real(), kTol) << "index " << i;
        ASSERT_NEAR(got[i].imag(), want[i].imag(), kTol) << "index " << i;
    }
}

/** Random support of size k over n qubits; returns (support_mask, v_bits). */
std::pair<Basis, Basis>
randomSupport(Rng &rng, int n, int k)
{
    Basis support = 0;
    while (popcount(support) < k)
        support |= Basis{1} << rng.intIn(0, n - 1);
    Basis v = 0;
    for (int q = 0; q < n; ++q)
        if ((support >> q) & 1 && rng.chance(0.5))
            v |= Basis{1} << q;
    return {support, v};
}

/**
 * Fixture parameterized over the kernel thread count, covering the
 * serial path and the OpenMP partitioned path.
 */
class Kernels : public ::testing::TestWithParam<int>
{
  protected:
    void SetUp() override { sim::setSimThreads(GetParam()); }
    void TearDown() override { sim::setSimThreads(0); }
};

TEST_P(Kernels, SubspaceEnumerationVisitsExactlyTheMatchingIndices)
{
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const int n = rng.intIn(2, 12);
        const auto [support, v] = randomSupport(rng, n, rng.intIn(1, n));
        const Basis dim_mask = (Basis{1} << n) - 1;
        const Basis free_mask = dim_mask & ~support;
        std::vector<int> visits(std::size_t{1} << n, 0);
        sim::forEachInSubspace(free_mask, v,
                               [&](Basis idx) { ++visits[idx]; });
        for (std::size_t i = 0; i < visits.size(); ++i)
            ASSERT_EQ(visits[i], (i & support) == v ? 1 : 0)
                << "index " << i;
    }
}

TEST_P(Kernels, SubspaceExpandMatchesEnumerationOrder)
{
    Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.intIn(2, 10);
        const auto [support, v] = randomSupport(rng, n, rng.intIn(1, n));
        const Basis free_mask = ((Basis{1} << n) - 1) & ~support;
        std::size_t t = 0;
        sim::forEachInSubspace(free_mask, v, [&](Basis idx) {
            ASSERT_EQ(sim::subspaceExpand(free_mask, v, t), idx);
            ++t;
        });
        ASSERT_EQ(t, sim::subspaceCount(free_mask));
    }
}

TEST_P(Kernels, PairRotationMatchesNaive)
{
    Rng rng(17);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = rng.intIn(2, 10);
        const auto [support, v] =
            randomSupport(rng, n, rng.intIn(1, std::min(n, 4)));
        const double beta = rng.uniform(-3.2, 3.2);

        StateVector sv(n);
        CVec ref = randomState(rng, n);
        loadState(sv, ref);
        sv.applyPairRotation(support, v, beta);
        sim::naive::pairRotation(ref, support, v, beta);
        expectSameState(sv.amplitudes(), ref);
    }
}

TEST_P(Kernels, PairRotationLargeStateParallelPath)
{
    // n = 16 with small support drives the subspace loop over 2^(16-k)
    // indices, past the parallel grain when threads > 1.
    Rng rng(19);
    const int n = 16;
    const auto [support, v] = randomSupport(rng, n, 3);
    const double beta = 1.234;
    StateVector sv(n);
    CVec ref = randomState(rng, n);
    loadState(sv, ref);
    sv.applyPairRotation(support, v, beta);
    sim::naive::pairRotation(ref, support, v, beta);
    expectSameState(sv.amplitudes(), ref);
}

TEST_P(Kernels, PairRotationHighSupportFewLongRuns)
{
    // Support entirely in high qubits -> a single long run split across
    // the threads (the outer_count < team branch of forEachSubspaceRun).
    Rng rng(20);
    const int n = 16;
    const Basis support = (Basis{1} << 13) | (Basis{1} << 14)
                          | (Basis{1} << 15);
    const Basis v = Basis{1} << 14;
    const double beta = 0.456;
    StateVector sv(n);
    CVec ref = randomState(rng, n);
    loadState(sv, ref);
    sv.applyPairRotation(support, v, beta);
    sim::naive::pairRotation(ref, support, v, beta);
    expectSameState(sv.amplitudes(), ref);
}

TEST_P(Kernels, PhaseMaskHighMaskFewLongRuns)
{
    Rng rng(21);
    const int n = 16;
    const Basis mask = (Basis{1} << 14) | (Basis{1} << 15);
    const double phi = 1.1;
    StateVector sv(n);
    CVec ref = randomState(rng, n);
    loadState(sv, ref);
    sv.applyPhaseMask(mask, phi);
    sim::naive::phaseMask(ref, mask, phi);
    expectSameState(sv.amplitudes(), ref);
}

TEST_P(Kernels, PhaseMaskMatchesNaive)
{
    Rng rng(23);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = rng.intIn(2, 10);
        const auto [mask, v] = randomSupport(rng, n, rng.intIn(1, n));
        (void)v;
        const double phi = rng.uniform(-3.2, 3.2);
        StateVector sv(n);
        CVec ref = randomState(rng, n);
        loadState(sv, ref);
        sv.applyPhaseMask(mask, phi);
        sim::naive::phaseMask(ref, mask, phi);
        expectSameState(sv.amplitudes(), ref);
    }
}

TEST_P(Kernels, Controlled1qMatchesNaive)
{
    Rng rng(29);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = rng.intIn(2, 10);
        const int q = rng.intIn(0, n - 1);
        Basis controls = 0;
        const int nc = rng.intIn(1, std::max(1, std::min(n - 1, 3)));
        while (popcount(controls) < nc) {
            const int c = rng.intIn(0, n - 1);
            if (c != q)
                controls |= Basis{1} << c;
        }
        const Cplx m00{rng.normal(), rng.normal()};
        const Cplx m01{rng.normal(), rng.normal()};
        const Cplx m10{rng.normal(), rng.normal()};
        const Cplx m11{rng.normal(), rng.normal()};
        StateVector sv(n);
        CVec ref = randomState(rng, n);
        loadState(sv, ref);
        sv.applyControlled1q(controls, q, m00, m01, m10, m11);
        sim::naive::controlled1q(ref, controls, q, m00, m01, m10, m11);
        expectSameState(sv.amplitudes(), ref);
    }
}

TEST_P(Kernels, XYAndSwapMatchNaive)
{
    Rng rng(31);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = rng.intIn(2, 10);
        const int a = rng.intIn(0, n - 1);
        int b = rng.intIn(0, n - 1);
        if (b == a)
            b = (a + 1) % n;
        const double beta = rng.uniform(-3.2, 3.2);

        StateVector sv(n);
        CVec ref = randomState(rng, n);
        loadState(sv, ref);
        sv.applyXY(a, b, beta);
        sim::naive::xy(ref, a, b, beta);
        expectSameState(sv.amplitudes(), ref);

        loadState(sv, ref);
        sv.applySwap(a, b);
        sim::naive::swapQubits(ref, a, b);
        expectSameState(sv.amplitudes(), ref);
    }
}

TEST_P(Kernels, Diagonal1qMatchesApply1q)
{
    Rng rng(37);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.intIn(2, 10);
        const int q = rng.intIn(0, n - 1);
        const Cplx d0{rng.normal(), rng.normal()};
        const Cplx d1{rng.normal(), rng.normal()};
        const CVec psi = randomState(rng, n);
        StateVector fast(n), ref(n);
        loadState(fast, psi);
        loadState(ref, psi);
        fast.applyDiagonal1q(q, d0, d1);
        ref.apply1q(q, d0, 0, 0, d1);
        expectSameState(fast.amplitudes(), ref.amplitudes());
    }
}

TEST_P(Kernels, ParityPhaseMatchesDiagonalCallback)
{
    Rng rng(41);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.intIn(2, 12);
        const auto [mask, v] = randomSupport(rng, n, rng.intIn(1, n));
        (void)v;
        const double theta = rng.uniform(-3.2, 3.2);
        const Cplx even{std::cos(theta / 2), -std::sin(theta / 2)};
        const Cplx odd = std::conj(even);
        const CVec psi = randomState(rng, n);
        StateVector fast(n), ref(n);
        loadState(fast, psi);
        loadState(ref, psi);
        fast.applyParityPhase(mask, even, odd);
        ref.applyDiagonal([&](Basis idx) {
            return popcount(idx & mask) & 1 ? odd : even;
        });
        expectSameState(fast.amplitudes(), ref.amplitudes());
    }
}

TEST_P(Kernels, CommuteLayerMatchesPerTermEvolution)
{
    Rng rng(43);
    const int n = 8;
    std::vector<std::vector<int>> moves = {
        {1, -1, 0, 0, 0, 0, 0, 0},
        {0, 1, -1, 1, 0, 0, 0, 0},
        {0, 0, 0, 1, -1, 0, 1, -1},
    };
    const auto terms = core::makeCommuteTerms(moves);
    const double beta = 0.77;
    const CVec psi = randomState(rng, n);
    StateVector layered(n), stepped(n);
    loadState(layered, psi);
    loadState(stepped, psi);
    core::applyCommuteLayer(layered, terms, beta);
    for (const auto &term : terms)
        core::applyCommuteExact(stepped, term, beta);
    expectSameState(layered.amplitudes(), stepped.amplitudes());
}

TEST_P(Kernels, ExpectationAndPhaseTableMatchScalarLoop)
{
    Rng rng(47);
    const int n = 14; // past the parallel grain at dim 16384
    StateVector sv(n);
    CVec psi = randomState(rng, n);
    loadState(sv, psi);
    std::vector<double> table(std::size_t{1} << n);
    for (auto &t : table)
        t = rng.uniform(-2.0, 2.0);

    double want = 0.0;
    for (std::size_t i = 0; i < table.size(); ++i)
        want += std::norm(psi[i]) * table[i];
    EXPECT_NEAR(sv.expectationTable(table), want, 1e-10);
    EXPECT_NEAR(sv.expectationDiagonal([&](Basis x) { return table[x]; }),
                want, 1e-10);

    const double gamma = 0.9;
    sv.applyPhaseTable(table, gamma);
    for (std::size_t i = 0; i < psi.size(); ++i) {
        const double phi = -gamma * table[i];
        psi[i] *= Cplx{std::cos(phi), std::sin(phi)};
    }
    expectSameState(sv.amplitudes(), psi);
}

// ------------------------------------------------ SoA batched kernels

/** Load the same random lane states into a batch and a per-lane scalar
 * reference, then compare every lane byte for byte after @p apply runs
 * the batched kernel and @p scalar the scalar one. */
template <class BatchOp, class ScalarOp>
void
expectBatchedBitwise(Rng &rng, int n, std::size_t width, BatchOp &&apply,
                     ScalarOp &&scalar)
{
    sim::BatchedStateVector batch;
    batch.resizeScratch(n, width);
    std::vector<CVec> lanes(width);
    for (std::size_t b = 0; b < width; ++b) {
        lanes[b] = randomState(rng, n);
        batch.loadLane(b, lanes[b]);
    }
    apply(batch);
    StateVector sv(n);
    CVec got;
    for (std::size_t b = 0; b < width; ++b) {
        loadState(sv, lanes[b]);
        scalar(sv, b);
        batch.copyLane(b, got);
        ASSERT_EQ(0, std::memcmp(got.data(), sv.amplitudes().data(),
                                 got.size() * sizeof(Cplx)))
            << "lane " << b << " width " << width;
    }
}

TEST_P(Kernels, BatchedKernelsOddWidthsMatchScalarBitwise)
{
    // Widths that divide neither the dimension nor any cache line keep
    // the lane-stride index arithmetic honest.
    Rng rng(61);
    const int n = 6;
    for (const std::size_t width : {std::size_t{3}, std::size_t{5}}) {
        const auto [support, v] = randomSupport(rng, n, rng.intIn(1, n));
        std::vector<double> beta(width), phi(width), gamma(width);
        for (std::size_t b = 0; b < width; ++b) {
            beta[b] = rng.uniform(-3.0, 3.0);
            phi[b] = rng.uniform(-3.0, 3.0);
            gamma[b] = rng.uniform(-3.0, 3.0);
        }
        std::vector<double> c(width), s(width);
        for (std::size_t b = 0; b < width; ++b) {
            c[b] = std::cos(beta[b]);
            s[b] = std::sin(beta[b]);
        }
        expectBatchedBitwise(
            rng, n, width,
            [&](sim::BatchedStateVector &batch) {
                batch.applyPairRotation(support, v, c.data(), s.data());
            },
            [&](StateVector &sv, std::size_t b) {
                sv.applyPairRotation(support, v, c[b], s[b]);
            });
        expectBatchedBitwise(
            rng, n, width,
            [&](sim::BatchedStateVector &batch) {
                batch.applyPhaseMask(support, phi.data());
            },
            [&](StateVector &sv, std::size_t b) {
                sv.applyPhaseMask(support, phi[b]);
            });
        std::vector<double> table(std::size_t{1} << n);
        for (auto &t : table)
            t = rng.uniform(-2.0, 2.0);
        expectBatchedBitwise(
            rng, n, width,
            [&](sim::BatchedStateVector &batch) {
                batch.applyPhaseTable(table, gamma.data());
            },
            [&](StateVector &sv, std::size_t b) {
                sv.applyPhaseTable(table, gamma[b]);
            });
    }
}

TEST_P(Kernels, BatchedSupportWeightExtremesMatchScalarBitwise)
{
    // k = 0 (empty mask: the whole space is one subspace) and k = n
    // (full mask: every subspace holds a single amplitude).
    Rng rng(67);
    const int n = 5;
    const Basis full = (Basis{1} << n) - 1;
    for (const std::size_t width : {std::size_t{3}, std::size_t{4}}) {
        std::vector<double> phi(width), c(width), s(width);
        for (std::size_t b = 0; b < width; ++b) {
            phi[b] = rng.uniform(-3.0, 3.0);
            c[b] = std::cos(phi[b]);
            s[b] = std::sin(phi[b]);
        }
        expectBatchedBitwise(
            rng, n, width,
            [&](sim::BatchedStateVector &batch) {
                batch.applyPhaseMask(0, phi.data());
            },
            [&](StateVector &sv, std::size_t b) {
                sv.applyPhaseMask(0, phi[b]);
            });
        expectBatchedBitwise(
            rng, n, width,
            [&](sim::BatchedStateVector &batch) {
                batch.applyPhaseMask(full, phi.data());
            },
            [&](StateVector &sv, std::size_t b) {
                sv.applyPhaseMask(full, phi[b]);
            });
        // Full-support pair rotation: free mask 0, single-amplitude
        // subspaces, one pair per enumerated run.
        const Basis v = rng.intIn(0, static_cast<int>(full));
        expectBatchedBitwise(
            rng, n, width,
            [&](sim::BatchedStateVector &batch) {
                batch.applyPairRotation(full, v, c.data(), s.data());
            },
            [&](StateVector &sv, std::size_t b) {
                sv.applyPairRotation(full, v, c[b], s[b]);
            });
    }
}

TEST_P(Kernels, CompressedExpectationBitwiseMatchesExpanded)
{
    Rng rng(71);
    const int n = 13; // past the parallel grain so the reduce partitions
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<double> distinct{-1.5, 0.25, 2.0, -0.125};
    std::vector<std::uint16_t> index(dim);
    std::vector<double> table(dim);
    for (std::size_t i = 0; i < dim; ++i) {
        index[i] = static_cast<std::uint16_t>(
            rng.intIn(0, static_cast<int>(distinct.size()) - 1));
        table[i] = distinct[index[i]];
    }
    StateVector sv(n);
    loadState(sv, randomState(rng, n));
    const double expanded = sv.expectationTable(table);
    const double compressed = sv.expectationTableCompressed(distinct, index);
    EXPECT_EQ(0, std::memcmp(&expanded, &compressed, sizeof(double)));

    // Batched, width 3: every lane must reproduce the scalar bits.
    const std::size_t width = 3;
    sim::BatchedStateVector batch;
    batch.resizeScratch(n, width);
    std::vector<CVec> lanes(width);
    for (std::size_t b = 0; b < width; ++b) {
        lanes[b] = randomState(rng, n);
        batch.loadLane(b, lanes[b]);
    }
    std::vector<double> got(width);
    batch.expectationTableCompressed(distinct, index, got.data());
    for (std::size_t b = 0; b < width; ++b) {
        loadState(sv, lanes[b]);
        const double want = sv.expectationTable(table);
        ASSERT_EQ(0, std::memcmp(&got[b], &want, sizeof(double)));
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, Kernels, ::testing::Values(1, 2, 4),
                         [](const auto &info) {
                             return "threads" +
                                    std::to_string(info.param);
                         });

TEST(KernelsInfra, ParallelReduceIsDeterministicPerThreadCount)
{
    Rng rng(53);
    const int n = 15;
    StateVector sv(n);
    loadState(sv, randomState(rng, n));
    std::vector<double> table(std::size_t{1} << n);
    for (auto &t : table)
        t = rng.uniform(-1.0, 1.0);

    for (int threads : {1, 2, 3, 4}) {
        sim::setSimThreads(threads);
        const double a = sv.expectationTable(table);
        const double b = sv.expectationTable(table);
        EXPECT_EQ(a, b) << "threads=" << threads;
    }
    sim::setSimThreads(0);
}

TEST(KernelsInfra, PrepareReusesAllocationAcrossSizes)
{
    StateVector sv(16);
    const Cplx *buf = sv.amplitudes().data();
    sv.prepare(12);
    EXPECT_EQ(sv.numQubits(), 12);
    EXPECT_EQ(sv.dim(), std::size_t{1} << 12);
    EXPECT_EQ(sv.amplitudes().data(), buf);
    sv.prepare(16);
    EXPECT_EQ(sv.dim(), std::size_t{1} << 16);
    EXPECT_EQ(sv.amplitudes().data(), buf);
    EXPECT_NEAR(sv.prob(0), 1.0, kTol);
    EXPECT_NEAR(sv.totalProbability(), 1.0, kTol);
}

TEST(KernelsInfra, SampleSkipsZeroProbabilityRuns)
{
    // Sharply peaked state: only two basis states carry probability, far
    // apart in index space; sampling must only ever return those.
    Rng rng(59);
    StateVector sv(12);
    auto &amp = sv.amplitudes();
    amp[0] = 0.0;
    amp[5] = std::sqrt(0.25);
    amp[3000] = std::sqrt(0.75);
    const auto hist = sv.sample(rng, 2000, 0.0);
    int total = 0;
    for (const auto &[idx, cnt] : hist) {
        EXPECT_TRUE(idx == 5 || idx == 3000) << "sampled " << idx;
        total += cnt;
    }
    EXPECT_EQ(total, 2000);
    EXPECT_GT(hist.at(3000), hist.at(5));
}

} // namespace
