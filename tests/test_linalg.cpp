/**
 * @file
 * Unit tests for the dense linear-algebra substrate: matrices, exact
 * fractions, matrix exponentials, Pauli builders, and Givens synthesis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "linalg/expm.hpp"
#include "linalg/fraction.hpp"
#include "linalg/givens.hpp"
#include "linalg/matrix.hpp"
#include "linalg/paulis.hpp"

using namespace chocoq;
using linalg::Cplx;
using linalg::Fraction;
using linalg::Matrix;

namespace
{

Matrix
randomUnitary(Rng &rng, int n)
{
    // Product of random single-qubit rotations and CX-like permutations
    // is unitary by construction.
    const std::size_t dim = std::size_t{1} << n;
    Matrix u = Matrix::identity(dim);
    for (int round = 0; round < 4; ++round) {
        for (int q = 0; q < n; ++q) {
            const double a = rng.uniform(0, 2 * M_PI);
            const double b = rng.uniform(0, 2 * M_PI);
            Matrix rot = Matrix::identity(dim);
            const Basis stride = Basis{1} << q;
            for (std::size_t i = 0; i < dim; ++i) {
                if (i & stride)
                    continue;
                const std::size_t j = i | stride;
                rot.at(i, i) = std::cos(a);
                rot.at(i, j) = -std::sin(a) * Cplx{std::cos(b),
                                                   std::sin(b)};
                rot.at(j, i) = std::sin(a) * Cplx{std::cos(b),
                                                  -std::sin(b)};
                rot.at(j, j) = std::cos(a);
            }
            u = rot * u;
        }
    }
    return u;
}

} // namespace

TEST(Matrix, IdentityAndMultiply)
{
    const Matrix id = Matrix::identity(4);
    Matrix a(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            a.at(r, c) = Cplx(static_cast<double>(r), static_cast<double>(c));
    EXPECT_LT((a * id).maxAbsDiff(a), 1e-14);
    EXPECT_LT((id * a).maxAbsDiff(a), 1e-14);
}

TEST(Matrix, DaggerIsConjugateTranspose)
{
    Matrix a(2, 3);
    a.at(0, 1) = Cplx{1, 2};
    a.at(1, 2) = Cplx{-3, 4};
    const Matrix d = a.dagger();
    EXPECT_EQ(d.rows(), 3u);
    EXPECT_EQ(d.cols(), 2u);
    EXPECT_EQ(d.at(1, 0), (Cplx{1, -2}));
    EXPECT_EQ(d.at(2, 1), (Cplx{-3, -4}));
}

TEST(Matrix, KronMatchesHandComputation)
{
    const Matrix x = linalg::pauliX();
    const Matrix z = linalg::pauliZ();
    const Matrix k = z.kron(x); // acts as X on low qubit, Z on high.
    EXPECT_EQ(k.rows(), 4u);
    // (Z kron X)|00> = |01>: column 0 has a 1 in row 1.
    EXPECT_EQ(k.at(1, 0), (Cplx{1, 0}));
    // (Z kron X)|10> = -|11>.
    EXPECT_EQ(k.at(3, 2), (Cplx{-1, 0}));
}

TEST(Matrix, PauliAlgebra)
{
    const Matrix x = linalg::pauliX();
    const Matrix y = linalg::pauliY();
    const Matrix z = linalg::pauliZ();
    // XY = iZ.
    EXPECT_LT((x * y - z * Cplx{0, 1}).maxAbs(), 1e-14);
    // X^2 = I.
    EXPECT_LT((x * x).maxAbsDiff(Matrix::identity(2)), 1e-14);
    // sigma+ + sigma- = X.
    EXPECT_LT((linalg::sigmaRaise() + linalg::sigmaLower()).maxAbsDiff(x),
              1e-14);
}

TEST(Matrix, UnitarityAndHermiticityChecks)
{
    EXPECT_TRUE(linalg::pauliX().isUnitary());
    EXPECT_TRUE(linalg::pauliX().isHermitian());
    EXPECT_FALSE(linalg::sigmaRaise().isUnitary());
    EXPECT_FALSE(linalg::sigmaRaise().isHermitian());
}

TEST(Matrix, PhaseDistanceIgnoresGlobalPhase)
{
    Rng rng(3);
    const Matrix u = randomUnitary(rng, 2);
    const Matrix v = u * Cplx{std::cos(1.1), std::sin(1.1)};
    EXPECT_LT(linalg::phaseDistance(u, v), 1e-10);
    EXPECT_GT(linalg::phaseDistance(u, linalg::pauliX().kron(
                                           linalg::pauliX())),
              1e-3);
}

TEST(Expm, ZeroGivesIdentity)
{
    const Matrix z(3, 3);
    EXPECT_LT(linalg::expm(z).maxAbsDiff(Matrix::identity(3)), 1e-12);
}

TEST(Expm, DiagonalMatchesScalarExp)
{
    Matrix d(2, 2);
    d.at(0, 0) = 0.5;
    d.at(1, 1) = Cplx{0, 1.5};
    const Matrix e = linalg::expm(d);
    EXPECT_NEAR(std::abs(e.at(0, 0) - std::exp(0.5)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(e.at(1, 1)
                         - Cplx(std::cos(1.5), std::sin(1.5))),
                0.0, 1e-12);
    EXPECT_NEAR(std::abs(e.at(0, 1)), 0.0, 1e-14);
}

TEST(Expm, PauliXRotation)
{
    // exp(-i t X) = cos(t) I - i sin(t) X.
    const double t = 0.7;
    const Matrix u = linalg::expUnitary(linalg::pauliX(), t);
    EXPECT_NEAR(std::abs(u.at(0, 0) - std::cos(t)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u.at(0, 1) - Cplx(0, -std::sin(t))), 0.0, 1e-12);
    EXPECT_TRUE(u.isUnitary());
}

TEST(Expm, HermitianGeneratorGivesUnitary)
{
    Rng rng(11);
    for (int n = 1; n <= 3; ++n) {
        const std::size_t dim = std::size_t{1} << n;
        Matrix h(dim, dim);
        for (std::size_t r = 0; r < dim; ++r) {
            h.at(r, r) = rng.uniform(-1, 1);
            for (std::size_t c = r + 1; c < dim; ++c) {
                h.at(r, c) = Cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
                h.at(c, r) = std::conj(h.at(r, c));
            }
        }
        EXPECT_TRUE(linalg::expUnitary(h, 0.9).isUnitary(1e-9));
    }
}

TEST(Fraction, Arithmetic)
{
    const Fraction half(1, 2);
    const Fraction third(1, 3);
    EXPECT_EQ(half + third, Fraction(5, 6));
    EXPECT_EQ(half - third, Fraction(1, 6));
    EXPECT_EQ(half * third, Fraction(1, 6));
    EXPECT_EQ(half / third, Fraction(3, 2));
    EXPECT_EQ(-half, Fraction(-1, 2));
}

TEST(Fraction, NormalizesSignAndGcd)
{
    EXPECT_EQ(Fraction(2, -4), Fraction(-1, 2));
    EXPECT_EQ(Fraction(6, 4), Fraction(3, 2));
    EXPECT_EQ(Fraction(0, 5), Fraction(0));
    EXPECT_TRUE(Fraction(4, 2).isInteger());
    EXPECT_FALSE(Fraction(1, 2).isInteger());
}

TEST(Fraction, Ordering)
{
    EXPECT_TRUE(Fraction(1, 3) < Fraction(1, 2));
    EXPECT_TRUE(Fraction(-1, 2) < Fraction(1, 3));
    EXPECT_NEAR(Fraction(22, 7).toDouble(), 3.142857, 1e-5);
}

TEST(Givens, IdentityNeedsNoRotations)
{
    const auto synth =
        linalg::synthesizeTwoLevel(Matrix::identity(8), 3);
    EXPECT_EQ(synth.rotations, 0u);
    EXPECT_EQ(synth.depth, 0u);
}

TEST(Givens, DenseUnitaryNeedsExponentialRotations)
{
    Rng rng(23);
    const Matrix u3 = randomUnitary(rng, 3);
    const Matrix u4 = randomUnitary(rng, 4);
    const auto s3 = linalg::synthesizeTwoLevel(u3, 3);
    const auto s4 = linalg::synthesizeTwoLevel(u4, 4);
    EXPECT_GT(s3.rotations, 8u);
    // Rotation count grows roughly 4x per extra qubit for dense unitaries.
    EXPECT_GT(s4.rotations, 2 * s3.rotations);
    EXPECT_GT(s4.depth, s4.rotations);
}

TEST(Givens, EmbeddedSingleQubitGateStaysCheap)
{
    // A 1q gate embedded in 4 qubits touches half the basis pairs but the
    // elimination count is far below the dense bound 2^{n-1}(2^n - 1).
    Rng rng(29);
    Matrix rot = randomUnitary(rng, 1);
    const Matrix u = linalg::embed1q(rot, 0, 4);
    const auto synth = linalg::synthesizeTwoLevel(u, 4);
    EXPECT_LT(synth.rotations, 40u);
}

TEST(MatrixVec, ApplyAndDotAndNorm)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = Cplx{0, 1};
    a.at(1, 0) = 2;
    linalg::CVec v{Cplx{1, 0}, Cplx{0, 1}};
    const auto w = a.apply(v);
    EXPECT_NEAR(std::abs(w[0] - Cplx(0, 1) * Cplx(0, 1) - 1.0), 0.0, 1e-14);
    EXPECT_NEAR(std::abs(w[1] - 2.0), 0.0, 1e-14);
    EXPECT_NEAR(linalg::norm(v), std::sqrt(2.0), 1e-14);
    EXPECT_NEAR(std::abs(linalg::dot(v, v) - 2.0), 0.0, 1e-14);
}
