/**
 * @file
 * State-vector simulator tests: every gate kernel against dense matrices,
 * fast paths, sampling statistics, and noise trajectories.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/expm.hpp"
#include "linalg/paulis.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"

using namespace chocoq;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;
using linalg::Cplx;
using linalg::Matrix;
using sim::StateVector;

namespace
{

linalg::CVec
randomState(Rng &rng, int n)
{
    linalg::CVec psi(std::size_t{1} << n);
    double norm2 = 0;
    for (auto &a : psi) {
        a = Cplx{rng.normal(), rng.normal()};
        norm2 += std::norm(a);
    }
    for (auto &a : psi)
        a /= std::sqrt(norm2);
    return psi;
}

/** Apply gate through the executor and compare with the dense unitary. */
void
expectGateMatchesMatrix(const Gate &g, int n, int seed)
{
    Rng rng(seed);
    const auto psi = randomState(rng, n);
    StateVector state(n);
    state.amplitudes() = psi;
    sim::applyGate(state, g);

    Circuit c(n);
    c.add(g);
    const Matrix u = sim::circuitUnitary(c);
    // circuitUnitary itself uses applyGate; cross-check against an
    // independently built dense operator for 1q gates and structure
    // checks elsewhere, so here verify executor linearity + norm.
    const auto expect = u.apply(psi);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_NEAR(std::abs(state.amplitudes()[i] - expect[i]), 0.0,
                    1e-10);
    EXPECT_NEAR(state.totalProbability(), 1.0, 1e-10);
}

} // namespace

TEST(StateVector, InitialState)
{
    StateVector s(3);
    EXPECT_EQ(s.dim(), 8u);
    EXPECT_NEAR(s.prob(0), 1.0, 1e-15);
    s.reset(5);
    EXPECT_NEAR(s.prob(5), 1.0, 1e-15);
    EXPECT_NEAR(s.totalProbability(), 1.0, 1e-15);
}

TEST(StateVector, HadamardAgainstMatrix)
{
    StateVector s(1);
    sim::applyGate(s, {GateType::H, {0}, 0.0});
    EXPECT_NEAR(s.prob(0), 0.5, 1e-12);
    EXPECT_NEAR(s.prob(1), 0.5, 1e-12);
}

TEST(StateVector, SingleQubitGatesAgainstDense)
{
    // Verify apply1q against explicit Pauli matrices on random states.
    Rng rng(5);
    const auto psi = randomState(rng, 3);
    for (const auto &[gate, mat] :
         {std::pair<GateType, Matrix>{GateType::X, linalg::pauliX()},
          {GateType::Y, linalg::pauliY()},
          {GateType::Z, linalg::pauliZ()}}) {
        for (int q = 0; q < 3; ++q) {
            StateVector s(3);
            s.amplitudes() = psi;
            sim::applyGate(s, {gate, {q}, 0.0});
            const auto expect = linalg::embed1q(mat, q, 3).apply(psi);
            for (std::size_t i = 0; i < expect.size(); ++i)
                EXPECT_NEAR(std::abs(s.amplitudes()[i] - expect[i]), 0.0,
                            1e-12);
        }
    }
}

TEST(StateVector, RotationGatesAreGeneratorExponentials)
{
    Rng rng(6);
    const double theta = 1.234;
    const auto checks = {
        std::pair<GateType, Matrix>{GateType::RX, linalg::pauliX()},
        {GateType::RY, linalg::pauliY()},
        {GateType::RZ, linalg::pauliZ()},
    };
    for (const auto &[gate, generator] : checks) {
        const auto psi = randomState(rng, 2);
        StateVector s(2);
        s.amplitudes() = psi;
        sim::applyGate(s, {gate, {1}, theta});
        const Matrix u = linalg::expUnitary(
            linalg::embed1q(generator, 1, 2), theta / 2.0);
        const auto expect = u.apply(psi);
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_NEAR(std::abs(s.amplitudes()[i] - expect[i]), 0.0,
                        1e-10);
    }
}

TEST(StateVector, ControlledAndCompositeGates)
{
    for (int seed = 0; seed < 5; ++seed) {
        expectGateMatchesMatrix({GateType::CX, {0, 2}, 0.0}, 3, seed);
        expectGateMatchesMatrix({GateType::CZ, {1, 2}, 0.0}, 3, seed);
        expectGateMatchesMatrix({GateType::CP, {0, 1}, 0.8}, 3, seed);
        expectGateMatchesMatrix({GateType::CCX, {0, 1, 2}, 0.0}, 3, seed);
        expectGateMatchesMatrix({GateType::SWAP, {0, 2}, 0.0}, 3, seed);
        expectGateMatchesMatrix({GateType::RZZ, {0, 1}, 0.5}, 3, seed);
        expectGateMatchesMatrix({GateType::MCP, {0, 1, 2}, 0.9}, 3, seed);
        expectGateMatchesMatrix({GateType::MCX, {0, 1, 2}, 0.0}, 3, seed);
    }
}

TEST(StateVector, XYAgainstDenseExponential)
{
    // exp(-i beta (XX + YY)) built densely vs the applyXY kernel.
    Rng rng(8);
    const double beta = 0.66;
    const Matrix xx = linalg::pauliX().kron(linalg::pauliX());
    const Matrix yy = linalg::pauliY().kron(linalg::pauliY());
    const Matrix u = linalg::expUnitary(xx + yy, beta);
    const auto psi = randomState(rng, 2);
    StateVector s(2);
    s.amplitudes() = psi;
    s.applyXY(0, 1, beta);
    const auto expect = u.apply(psi);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_NEAR(std::abs(s.amplitudes()[i] - expect[i]), 0.0, 1e-10);
}

TEST(StateVector, XYConservesExcitationNumber)
{
    StateVector s(2);
    s.reset(0b01);
    s.applyXY(0, 1, 0.7);
    EXPECT_NEAR(s.prob(0b01) + s.prob(0b10), 1.0, 1e-12);
    s.reset(0b11);
    s.applyXY(0, 1, 0.7);
    EXPECT_NEAR(s.prob(0b11), 1.0, 1e-12);
}

TEST(StateVector, PhaseMaskOnlyHitsMatchingStates)
{
    StateVector s(2);
    s.amplitudes() = {0.5, 0.5, 0.5, 0.5};
    s.applyPhaseMask(0b11, M_PI);
    EXPECT_NEAR(std::abs(s.amplitudes()[3] + 0.5), 0.0, 1e-12);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(std::abs(s.amplitudes()[i] - 0.5), 0.0, 1e-12);
}

TEST(StateVector, PhaseTableMatchesDiagonal)
{
    Rng rng(10);
    const int n = 4;
    std::vector<double> table(1 << n);
    for (auto &v : table)
        v = rng.uniform(-2, 2);
    const double gamma = 0.9;
    const auto psi = randomState(rng, n);
    StateVector a(n), b(n);
    a.amplitudes() = psi;
    b.amplitudes() = psi;
    a.applyPhaseTable(table, gamma);
    b.applyDiagonal([&](Basis idx) {
        const double phi = -gamma * table[idx];
        return Cplx{std::cos(phi), std::sin(phi)};
    });
    for (std::size_t i = 0; i < psi.size(); ++i)
        EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), 0.0,
                    1e-12);
}

TEST(StateVector, ExpectationTableMatchesCallback)
{
    Rng rng(12);
    const int n = 3;
    std::vector<double> table(1 << n);
    for (auto &v : table)
        v = rng.uniform(-5, 5);
    StateVector s(n);
    s.amplitudes() = randomState(rng, n);
    const double a = s.expectationTable(table);
    const double b =
        s.expectationDiagonal([&](Basis idx) { return table[idx]; });
    EXPECT_NEAR(a, b, 1e-12);
}

TEST(StateVector, DistributionAndDistinctStates)
{
    StateVector s(2);
    sim::applyGate(s, {GateType::H, {0}, 0.0});
    EXPECT_EQ(s.distinctStates(), 2u);
    const auto dist = s.distribution();
    EXPECT_EQ(dist.size(), 2u);
    EXPECT_NEAR(dist.at(0), 0.5, 1e-12);
    EXPECT_NEAR(dist.at(1), 0.5, 1e-12);
}

TEST(StateVector, SamplingMatchesProbabilities)
{
    StateVector s(2);
    sim::applyGate(s, {GateType::H, {0}, 0.0});
    Rng rng(33);
    const auto hist = s.sample(rng, 20000);
    EXPECT_NEAR(hist.at(0) / 20000.0, 0.5, 0.02);
    EXPECT_NEAR(hist.at(1) / 20000.0, 0.5, 0.02);
    EXPECT_EQ(hist.count(2), 0u);
}

TEST(StateVector, ReadoutErrorFlipsBits)
{
    StateVector s(1); // stays |0>
    Rng rng(35);
    const auto hist = s.sample(rng, 20000, 0.1);
    EXPECT_NEAR(hist.at(1) / 20000.0, 0.1, 0.015);
}

TEST(Executor, AfterGateProbeSeesEveryGate)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.barrier();
    c.x(1);
    StateVector s(2);
    std::vector<std::size_t> seen;
    sim::execute(s, c, [&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen.size(), 4u); // includes the barrier position
}

TEST(Executor, NoisyTrajectoriesPreserveNorm)
{
    Circuit c(3);
    for (int q = 0; q < 3; ++q)
        c.h(q);
    for (int q = 0; q + 1 < 3; ++q)
        c.cx(q, q + 1);
    sim::NoiseModel noise;
    noise.p1q = 0.05;
    noise.p2q = 0.1;
    Rng rng(40);
    for (int t = 0; t < 10; ++t) {
        StateVector s(3);
        sim::executeNoisy(s, c, noise, rng);
        EXPECT_NEAR(s.totalProbability(), 1.0, 1e-10);
    }
}

TEST(Executor, ZeroNoiseMatchesCleanExecution)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    StateVector clean(2), noisy(2);
    sim::execute(clean, c);
    Rng rng(41);
    sim::executeNoisy(noisy, c, {}, rng);
    for (std::size_t i = 0; i < clean.dim(); ++i)
        EXPECT_NEAR(std::abs(clean.amplitudes()[i]
                             - noisy.amplitudes()[i]),
                    0.0, 1e-14);
}

TEST(Executor, NoiseShrinksSuccessProbability)
{
    // A Bell-pair circuit: with noise, P(|00> or |11>) drops below 1.
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    sim::NoiseModel noise;
    noise.p1q = 0.02;
    noise.p2q = 0.05;
    Rng rng(42);
    double good = 0.0;
    const int kTrajectories = 200;
    for (int t = 0; t < kTrajectories; ++t) {
        StateVector s(2);
        sim::executeNoisy(s, c, noise, rng);
        good += s.prob(0b00) + s.prob(0b11);
    }
    good /= kTrajectories;
    EXPECT_LT(good, 0.999);
    EXPECT_GT(good, 0.8);
}

TEST(Unitary, HGateUnitary)
{
    Circuit c(1);
    c.h(0);
    const Matrix u = sim::circuitUnitary(c);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(u.at(0, 0) - inv_sqrt2), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u.at(1, 1) + inv_sqrt2), 0.0, 1e-12);
}

TEST(StateVector, PairRotationFullAngleReturnsMinusState)
{
    // beta = pi: exp(-i pi Hc) = -identity on the coupled pair... in fact
    // cos(pi) = -1 on the pair block and identity elsewhere.
    StateVector s(2);
    s.reset(0b01);
    s.applyPairRotation(0b11, 0b01, M_PI);
    EXPECT_NEAR(std::abs(s.amplitudes()[0b01] + 1.0), 0.0, 1e-12);
}

TEST(StateVector, PairRotationHalfAngleSwaps)
{
    // beta = pi/2 maps |v> to -i|v-bar>.
    StateVector s(2);
    s.reset(0b01);
    s.applyPairRotation(0b11, 0b01, M_PI / 2);
    EXPECT_NEAR(s.prob(0b10), 1.0, 1e-12);
}
