/**
 * @file
 * Solve-service tests: the JSON codec, the compilation-cache key and
 * hit/miss behavior, scheduler determinism (identical (job, seed) pairs
 * must be bit-identical at any worker count and submission order), and
 * the batched multi-start screening's bitwise equivalence with the
 * sequential path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

// Raw sockets for the wire-torture tests: pathological byte patterns
// (one-byte reads, tiny SO_RCVBUF) the JsonlClient line API hides.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "core/chocoq_solver.hpp"
#include "obs/roofline.hpp"
#include "core/circuits.hpp"
#include "core/commute.hpp"
#include "core/qaoa.hpp"
#include "problems/suite.hpp"
#include "service/compile_cache.hpp"
#include "service/fault.hpp"
#include "service/job.hpp"
#include "service/json.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace chocoq;

// ---------------------------------------------------------------- JSON

TEST(Json, ParsesScalarsAndContainers)
{
    const auto v = service::Json::parse(
        R"({"a": 1.5, "b": "x\ny", "c": [true, null, -2], "d": {"e": 3}})");
    EXPECT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.getNumber("a", 0.0), 1.5);
    EXPECT_EQ(v.getString("b", ""), "x\ny");
    ASSERT_NE(v.find("c"), nullptr);
    const auto &arr = v.find("c")->items();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].asBool(false));
    EXPECT_TRUE(arr[1].isNull());
    EXPECT_DOUBLE_EQ(arr[2].asNumber(0.0), -2.0);
    EXPECT_DOUBLE_EQ(v.find("d")->getNumber("e", 0.0), 3.0);
}

TEST(Json, RoundTripsThroughDump)
{
    service::Json obj = service::Json::object();
    obj.set("name", "f\"1\"");
    obj.set("value", 0.1); // not exactly representable: needs %.17g
    obj.set("count", 42);
    obj.set("flag", true);
    const auto back = service::Json::parse(obj.dump());
    EXPECT_EQ(back.getString("name", ""), "f\"1\"");
    EXPECT_DOUBLE_EQ(back.getNumber("value", 0.0), 0.1);
    EXPECT_DOUBLE_EQ(back.getNumber("count", 0.0), 42.0);
    EXPECT_TRUE(back.getBool("flag", false));
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(service::Json::parse("{\"a\": }"), FatalError);
    EXPECT_THROW(service::Json::parse("[1, 2"), FatalError);
    EXPECT_THROW(service::Json::parse("{} trailing"), FatalError);
    EXPECT_THROW(service::Json::parse("\"unterminated"), FatalError);
}

TEST(Json, UnicodeEscape)
{
    const auto v = service::Json::parse(R"({"s": "Aé"})");
    EXPECT_EQ(v.getString("s", ""), "A\xc3\xa9");
    // Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8.
    const auto pair = service::Json::parse(R"({"s": "😀"})");
    EXPECT_EQ(pair.getString("s", ""), "\xf0\x9f\x98\x80");
    EXPECT_THROW(service::Json::parse(R"({"s": "\ud83d"})"), FatalError);
    EXPECT_THROW(service::Json::parse(R"({"s": "\ude00"})"), FatalError);
}

TEST(Json, DeepNestingFailsInsteadOfOverflowing)
{
    // Untrusted stdin: a pathological request must fail the request,
    // not blow the parser's stack.
    const std::string deep(100000, '[');
    EXPECT_THROW(service::Json::parse(deep), FatalError);
    // Sane nesting still parses.
    EXPECT_NO_THROW(service::Json::parse("[[[[[[[[[[1]]]]]]]]]]"));
}

// ----------------------------------------------------------- job model

TEST(JobModel, ParsesRequestWithDefaults)
{
    const auto job = service::jobFromJsonLine(
        R"({"id":"j1","scale":"G2","case":3,"seed":99,"iters":25})");
    EXPECT_EQ(job.id, "j1");
    EXPECT_EQ(job.solver, "choco-q");
    EXPECT_EQ(job.scale, "G2");
    EXPECT_EQ(job.caseIndex, 3u);
    EXPECT_EQ(job.seed, 99u);
    EXPECT_EQ(job.maxIterations, 25);
    EXPECT_EQ(job.shots, 0);
    EXPECT_EQ(job.deadlineMs, 0.0);
}

TEST(JobModel, StringSeedCarriesFull64Bits)
{
    // 2^53 + 1 is not representable as a double; the string form is.
    const auto job = service::jobFromJsonLine(
        R"({"scale":"F1","seed":"9007199254740993"})");
    EXPECT_EQ(job.seed, 9007199254740993ull);
}

TEST(JobModel, RejectsUnknownScaleAndSolver)
{
    EXPECT_THROW(service::jobFromJsonLine(R"({"scale":"Z9"})"), FatalError);
    EXPECT_THROW(service::jobFromJsonLine(R"({"solver":"adam"})"),
                 FatalError);
}

TEST(JobModel, RejectsOutOfRangeNumericFields)
{
    // Untrusted input: out-of-range or fractional integers must fail
    // the request cleanly, not hit a UB float->int cast.
    EXPECT_THROW(service::jobFromJsonLine(R"({"scale":"F1","case":-1})"),
                 FatalError);
    EXPECT_THROW(service::jobFromJsonLine(R"({"scale":"F1","seed":-5})"),
                 FatalError);
    EXPECT_THROW(
        service::jobFromJsonLine(R"({"scale":"F1","shots":1e19})"),
        FatalError);
    EXPECT_THROW(
        service::jobFromJsonLine(R"({"scale":"F1","iters":2.5})"),
        FatalError);
    EXPECT_THROW(
        service::jobFromJsonLine(R"({"scale":"F1","deadline_ms":-1})"),
        FatalError);
}

TEST(Suite, ScaleByName)
{
    ASSERT_TRUE(problems::scaleByName("F1").has_value());
    EXPECT_EQ(*problems::scaleByName("F1"), problems::Scale::F1);
    EXPECT_EQ(*problems::scaleByName("k4"), problems::Scale::K4);
    EXPECT_FALSE(problems::scaleByName("F9").has_value());
    EXPECT_FALSE(problems::scaleByName("").has_value());
}

// ------------------------------------------------------- compile cache

TEST(CompileCache, KeyIgnoresNameButSeesStructure)
{
    const core::ChocoQOptions opts;
    auto a = problems::makeCase(problems::Scale::F1, 0);
    auto b = problems::makeCase(problems::Scale::F1, 0);
    b.setName("renamed-but-identical");
    EXPECT_EQ(service::compileKey(a, opts), service::compileKey(b, opts));

    // Different case: same constraint shape, different objective
    // coefficients -> different key.
    const auto c = problems::makeCase(problems::Scale::F1, 1);
    EXPECT_NE(service::compileKey(a, opts), service::compileKey(c, opts));

    // Compile-relevant options are part of the key...
    core::ChocoQOptions other = opts;
    other.eliminate = 0;
    EXPECT_NE(service::compileKey(a, opts), service::compileKey(a, other));

    // ...run-only options are not.
    core::ChocoQOptions run_only = opts;
    run_only.layers = 3;
    run_only.engine.seed = 123;
    EXPECT_EQ(service::compileKey(a, opts),
              service::compileKey(a, run_only));
}

TEST(CompileCache, HitOnEqualStructureMissOnDistinct)
{
    service::CompileCache cache;
    const core::ChocoQSolver solver;
    const auto p0 = problems::makeCase(problems::Scale::F1, 0);
    const auto p1 = problems::makeCase(problems::Scale::F1, 1);

    bool hit = true;
    const auto a0 = cache.get(p0, solver, &hit);
    EXPECT_FALSE(hit);
    const auto a0_again = cache.get(p0, solver, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(a0.get(), a0_again.get()) << "hit must share the artifacts";

    cache.get(p1, solver, &hit);
    EXPECT_FALSE(hit) << "structurally distinct problem must recompile";

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 1.0 / 3.0);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CompileCache, FailedCompilationIsNotCached)
{
    service::CompileCache cache;
    const core::ChocoQSolver solver;
    model::Problem infeasible(2, model::Sense::Minimize, "infeasible");
    infeasible.addEquality({1, 1}, 3);

    EXPECT_THROW(cache.get(infeasible, solver), FatalError);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_THROW(cache.get(infeasible, solver), FatalError);
    EXPECT_EQ(cache.stats().misses, 2u) << "failures must not be cached";
}

TEST(CompileCache, SharedArtifactsSolveIdentically)
{
    const core::ChocoQSolver solver;
    const auto p = problems::makeCase(problems::Scale::K1, 0);
    const auto fresh = solver.compile(p);

    service::CompileCache cache;
    const auto cached_a = cache.get(p, solver);
    const auto cached_b = cache.get(p, solver);

    const auto out_fresh = solver.solveCompiled(p, *fresh);
    const auto out_cached = solver.solveCompiled(p, *cached_b);
    (void)cached_a;
    ASSERT_EQ(out_fresh.distribution.size(), out_cached.distribution.size());
    EXPECT_EQ(0, std::memcmp(&out_fresh.bestCost, &out_cached.bestCost,
                             sizeof(double)));
    for (auto it_f = out_fresh.distribution.begin(),
              it_c = out_cached.distribution.begin();
         it_f != out_fresh.distribution.end(); ++it_f, ++it_c) {
        EXPECT_EQ(it_f->first, it_c->first);
        EXPECT_EQ(0, std::memcmp(&it_f->second, &it_c->second,
                                 sizeof(double)));
    }
}

TEST(CompileCache, LruEvictsUnderByteBudget)
{
    const core::ChocoQSolver solver;
    const auto p0 = problems::makeCase(problems::Scale::F1, 0);
    const auto p1 = problems::makeCase(problems::Scale::F1, 1);
    const auto p2 = problems::makeCase(problems::Scale::K1, 0);

    // Budget one byte short of all three structures: inserting the
    // third must evict exactly the coldest entry.
    const std::size_t b0 = solver.compile(p0)->memoryBytes();
    const std::size_t b1 = solver.compile(p1)->memoryBytes();
    const std::size_t b2 = solver.compile(p2)->memoryBytes();
    service::CompileCache cache(
        service::CompileCacheOptions{b0 + b1 + b2 - 1});

    bool hit = false;
    cache.get(p0, solver, &hit);
    cache.get(p1, solver, &hit);
    cache.get(p0, solver, &hit); // touch p0: p1 becomes coldest
    EXPECT_TRUE(hit);
    cache.get(p2, solver, &hit); // over budget -> evict LRU tail

    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, stats.maxBytes);
    EXPECT_EQ(stats.entries, 2u);

    // The recently touched structure survived; the coldest did not.
    cache.get(p0, solver, &hit);
    EXPECT_TRUE(hit) << "recently used entry must survive eviction";
    cache.get(p1, solver, &hit);
    EXPECT_FALSE(hit) << "evicted structure must recompile";
}

TEST(CompileCache, EvictionDoesNotChangeResults)
{
    const core::ChocoQSolver solver;
    const auto p = problems::makeCase(problems::Scale::F1, 0);

    // A 1-byte budget evicts every completed entry immediately: all
    // misses, yet the recompiled artifacts must solve identically.
    service::CompileCache cache(service::CompileCacheOptions{1});
    bool hit = true;
    const auto a = cache.get(p, solver, &hit);
    EXPECT_FALSE(hit);
    const auto out_a = solver.solveCompiled(p, *a);
    const auto b = cache.get(p, solver, &hit);
    EXPECT_FALSE(hit) << "budget of 1 byte keeps nothing";
    const auto out_b = solver.solveCompiled(p, *b);
    EXPECT_GE(cache.stats().evictions, 2u);
    EXPECT_EQ(0, std::memcmp(&out_a.bestCost, &out_b.bestCost,
                             sizeof(double)));
}

TEST(CompileCache, UnboundedBudgetNeverEvicts)
{
    const core::ChocoQSolver solver;
    service::CompileCache cache(service::CompileCacheOptions{0});
    cache.get(problems::makeCase(problems::Scale::F1, 0), solver);
    cache.get(problems::makeCase(problems::Scale::F1, 1), solver);
    cache.get(problems::makeCase(problems::Scale::K1, 0), solver);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_GT(stats.bytes, 0u);
}

// ----------------------------------------------------------- scheduler

TEST(Scheduler, RunsEveryTaskOnSomeWorker)
{
    service::Scheduler scheduler(4);
    std::atomic<int> count{0};
    std::atomic<bool> id_ok{true};
    for (int i = 0; i < 64; ++i)
        scheduler.submit([&](service::WorkerContext &ctx) {
            if (ctx.id < 0 || ctx.id >= 4)
                id_ok = false;
            ++count;
        });
    scheduler.wait();
    EXPECT_EQ(count.load(), 64);
    EXPECT_TRUE(id_ok.load());
}

TEST(Scheduler, WaitWithNoTasksReturnsImmediately)
{
    service::Scheduler scheduler(2);
    scheduler.wait();
    SUCCEED();
}

TEST(Scheduler, ThrowingTaskDoesNotKillThePoolOrHangWait)
{
    service::Scheduler scheduler(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        scheduler.submit([&](service::WorkerContext &) {
            ++ran;
            throw std::runtime_error("callback failure");
        });
    scheduler.submit([&](service::WorkerContext &) { ++ran; });
    scheduler.wait(); // must return: throwing tasks still count as done
    EXPECT_EQ(ran.load(), 9);
}

// ----------------------------------------- service determinism & jobs

namespace
{

std::vector<service::SolveJob>
determinismSuite()
{
    std::vector<service::SolveJob> jobs;
    const char *scales[] = {"F1", "F1", "K1"};
    const unsigned cases[] = {0, 1, 0};
    for (int s = 0; s < 3; ++s)
        for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
            service::SolveJob job;
            job.id = std::string(scales[s]) + "#"
                     + std::to_string(cases[s]) + "@"
                     + std::to_string(seed);
            job.scale = scales[s];
            job.caseIndex = cases[s];
            job.seed = seed;
            job.maxIterations = 10;
            job.keepStarts = 2;
            jobs.push_back(std::move(job));
        }
    return jobs;
}

} // namespace

TEST(SolveService, DeterministicAcrossWorkersAndSubmissionOrder)
{
    auto jobs = determinismSuite();

    service::ServiceOptions serial;
    serial.workers = 1;
    auto base = service::SolveService(serial).solveAll(jobs);

    // Same jobs, reversed submission, four workers sharing one cache.
    std::reverse(jobs.begin(), jobs.end());
    service::ServiceOptions parallel;
    parallel.workers = 4;
    auto shuffled = service::SolveService(parallel).solveAll(jobs);

    ASSERT_EQ(base.size(), shuffled.size());
    for (const auto &expect : base) {
        const auto it = std::find_if(
            shuffled.begin(), shuffled.end(),
            [&](const auto &r) { return r.id == expect.id; });
        ASSERT_NE(it, shuffled.end()) << expect.id;
        EXPECT_EQ(expect.status, "ok");
        EXPECT_EQ(it->status, "ok");
        EXPECT_EQ(expect.distHash, it->distHash)
            << expect.id << ": distribution must be bit-identical";
        EXPECT_EQ(0,
                  std::memcmp(&expect.bestCost, &it->bestCost,
                              sizeof(double)))
            << expect.id;
        EXPECT_EQ(expect.evaluations, it->evaluations) << expect.id;
    }
}

TEST(SolveService, CacheDoesNotChangeResults)
{
    const auto jobs = determinismSuite();
    service::ServiceOptions with_cache;
    with_cache.workers = 2;
    service::ServiceOptions no_cache;
    no_cache.workers = 2;
    no_cache.useCache = false;

    service::SolveService cached(with_cache);
    const auto a = cached.solveAll(jobs);
    const auto b = service::SolveService(no_cache).solveAll(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].distHash, b[i].distHash) << a[i].id;
    }
    // 12 choco-q jobs over 3 distinct structures: 3 misses, 9 hits.
    EXPECT_EQ(cached.cacheStats().misses, 3u);
    EXPECT_EQ(cached.cacheStats().hits, 9u);
}

TEST(SolveService, ErrorAndExpiredJobs)
{
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;

    service::SolveJob bad;
    bad.id = "bad";
    bad.scale = "F1";
    bad.solver = "choco-q";
    bad.device = "not-a-device";
    const auto r = svc.execute(bad, ctx);
    EXPECT_EQ(r.status, "error");
    EXPECT_NE(r.error.find("unknown device"), std::string::npos);

    // A deadline far in the past must expire without running.
    service::SolveJob late;
    late.id = "late";
    late.scale = "F1";
    late.deadlineMs = 1e-9;
    service::SolveResult out;
    svc.submit(late, [&](const service::SolveResult &res) { out = res; });
    svc.drain();
    EXPECT_EQ(out.status, "expired");
    EXPECT_EQ(out.id, "late");
}

TEST(SolveService, ResultJsonRoundTrip)
{
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;
    service::SolveJob job;
    job.id = "rt";
    job.scale = "F1";
    job.maxIterations = 8;
    const auto r = svc.execute(job, ctx);
    ASSERT_EQ(r.status, "ok");
    const auto v = service::Json::parse(service::resultToJson(r).dump());
    EXPECT_EQ(v.getString("id", ""), "rt");
    EXPECT_EQ(v.getString("status", ""), "ok");
    EXPECT_EQ(v.getString("problem", ""), r.problem);
    EXPECT_EQ(v.getNumber("evaluations", -1.0),
              static_cast<double>(r.evaluations));
    EXPECT_EQ(v.getString("dist_hash", "").size(), 16u);
}

// -------------------------------------------- batched multi-start path

TEST(BatchedMultiStart, LockstepScreeningMatchesSequentialBitwise)
{
    // A subrun shaped like the Choco-Q fast path: phase table + commute
    // layer per ansatz layer. `batched` also provides the lockstep batch
    // evolution; `sequential` forces the screening sweep through the
    // one-state fallback. Both must pick the same starts and produce
    // bit-identical results.
    const int n = 3;
    auto table = std::make_shared<std::vector<double>>(
        std::vector<double>{0.3, -1.2, 0.7, 2.1, -0.4, 1.9, -2.2, 0.05});
    auto terms = std::make_shared<std::vector<core::CommuteTerm>>(
        std::vector<core::CommuteTerm>{
            core::makeCommuteTerm({1, -1, 0}),
            core::makeCommuteTerm({0, 1, 1}),
        });
    const Basis x0 = 0b001;

    core::SubRun sequential;
    sequential.numQubits = n;
    sequential.init = x0;
    sequential.costTable = table;
    sequential.build = [n, x0](const std::vector<double> &) {
        circuit::Circuit c(n); // build path unused in this test
        core::appendBasisPreparation(c, x0);
        return c;
    };
    sequential.evolve = [x0, table, terms](sim::StateVector &state,
                                           const std::vector<double> &theta) {
        state.reset(x0);
        for (std::size_t l = 0; l < theta.size() / 2; ++l) {
            state.applyPhaseTable(*table, theta[2 * l]);
            core::applyCommuteLayer(state, *terms, theta[2 * l + 1]);
        }
    };
    sequential.lift = [](Basis x) { return x; };

    core::SubRun batched = sequential;
    batched.evolveBatch =
        [x0, table, terms](
            sim::BatchedStateVector &batch,
            const std::vector<const std::vector<double> *> &thetas) {
            batch.reset(x0);
            const std::size_t lanes = batch.lanes();
            std::vector<double> gammas(lanes), betas(lanes);
            std::vector<double> cs_scratch;
            for (std::size_t l = 0; l < thetas[0]->size() / 2; ++l) {
                for (std::size_t b = 0; b < lanes; ++b) {
                    gammas[b] = (*thetas[b])[2 * l];
                    betas[b] = (*thetas[b])[2 * l + 1];
                }
                batch.applyPhaseTable(*table, gammas.data());
                core::applyCommuteLayerBatched(batch, *terms, betas.data(),
                                               cs_scratch);
            }
        };

    core::EngineOptions opts;
    opts.theta0 = {0.4, 0.7};
    opts.extraStarts = {{0.8, 2.2}, {2.4, 1.2}, {1.2, 3.0}};
    opts.multiStartKeep = 2;
    opts.opt.maxIterations = 12;
    const auto cost = [table](Basis x) { return (*table)[x]; };

    const auto res_seq = core::runQaoa({sequential}, cost, opts);
    const auto res_batch = core::runQaoa({batched}, cost, opts);

    EXPECT_EQ(0, std::memcmp(&res_seq.opt.bestValue,
                             &res_batch.opt.bestValue, sizeof(double)));
    EXPECT_EQ(res_seq.opt.evaluations, res_batch.opt.evaluations);
    ASSERT_EQ(res_seq.distribution.size(), res_batch.distribution.size());
    for (auto it_s = res_seq.distribution.begin(),
              it_b = res_batch.distribution.begin();
         it_s != res_seq.distribution.end(); ++it_s, ++it_b) {
        EXPECT_EQ(it_s->first, it_b->first);
        EXPECT_EQ(0, std::memcmp(&it_s->second, &it_b->second,
                                 sizeof(double)));
    }
}

TEST(BatchedMultiStart, ScreeningPrunesOptimizerWork)
{
    // keepStarts = 1 must spend fewer objective evaluations than
    // optimizing all four default starts, and stay a valid solve.
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;

    service::SolveJob all;
    all.id = "all";
    all.scale = "F1";
    all.maxIterations = 20;
    const auto res_all = svc.execute(all, ctx);

    service::SolveJob pruned = all;
    pruned.id = "pruned";
    pruned.keepStarts = 1;
    const auto res_pruned = svc.execute(pruned, ctx);

    ASSERT_EQ(res_all.status, "ok");
    ASSERT_EQ(res_pruned.status, "ok");
    EXPECT_LT(res_pruned.evaluations, res_all.evaluations);
    EXPECT_GT(res_pruned.feasibleMass, 0.99);
}

// --------------------------------------------- fusion on/off (service)

namespace
{

/** The 8-job CI fixture, parsed from the source tree. */
std::vector<service::SolveJob>
fixtureJobs()
{
    std::ifstream in(std::string(CHOCOQ_SOURCE_DIR)
                     + "/tests/data/service_jobs.jsonl");
    EXPECT_TRUE(in.is_open()) << "fixture missing";
    std::vector<service::SolveJob> jobs;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        jobs.push_back(service::jobFromJsonLine(line));
    }
    return jobs;
}

} // namespace

TEST(SolveService, FixtureIdenticalWithFusionOnAndOff)
{
    // Fusion reshapes the kernel schedule, never the arithmetic: the
    // functional path is bit-identical by construction, and the noisy
    // sampling job always executes the unfused per-gate circuit. Every
    // result of the 8-job CI fixture must therefore match bitwise.
    auto jobs = fixtureJobs();
    ASSERT_EQ(jobs.size(), 8u);
    for (const auto &job : jobs)
        EXPECT_TRUE(job.fusion) << "fixture jobs default to fusion on";

    service::ServiceOptions options;
    options.workers = 2;
    auto fused = service::SolveService(options).solveAll(jobs);

    for (auto &job : jobs)
        job.fusion = false;
    auto plain = service::SolveService(options).solveAll(jobs);

    ASSERT_EQ(fused.size(), plain.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
        ASSERT_EQ(fused[i].status, "ok") << fused[i].id << ": "
                                         << fused[i].error;
        ASSERT_EQ(plain[i].status, "ok") << plain[i].id;
        EXPECT_EQ(fused[i].distHash, plain[i].distHash) << fused[i].id;
        EXPECT_EQ(0, std::memcmp(&fused[i].bestCost, &plain[i].bestCost,
                                 sizeof(double)))
            << fused[i].id;
        EXPECT_EQ(fused[i].evaluations, plain[i].evaluations)
            << fused[i].id;
    }
}

// ------------------------------------------- request-line front end

TEST(RequestLine, Utf8Validation)
{
    EXPECT_TRUE(service::utf8Valid("plain ascii"));
    EXPECT_TRUE(service::utf8Valid("caf\xc3\xa9 \xf0\x9f\x98\x80"));
    EXPECT_TRUE(service::utf8Valid(""));
    EXPECT_FALSE(service::utf8Valid("\xff\xfe"));         // invalid lead
    EXPECT_FALSE(service::utf8Valid("\xc3"));             // truncated
    EXPECT_FALSE(service::utf8Valid("\xc0\xaf"));         // overlong
    EXPECT_FALSE(service::utf8Valid("\xed\xa0\x80"));     // surrogate
    EXPECT_FALSE(service::utf8Valid("a\x80z"));           // stray cont.
}

TEST(RequestLine, ClassifiesSkipsJobsAndErrors)
{
    EXPECT_TRUE(service::parseRequestLine("", 1).skip);
    EXPECT_TRUE(service::parseRequestLine("  # comment", 2).skip);

    const auto ok =
        service::parseRequestLine(R"({"scale":"F1","seed":3})", 7);
    ASSERT_TRUE(ok.ok);
    EXPECT_EQ(ok.job.id, "job-7") << "empty id defaults per line";
    EXPECT_EQ(ok.job.seed, 3u);

    const auto bad = service::parseRequestLine("not json", 9);
    ASSERT_FALSE(bad.ok);
    EXPECT_FALSE(bad.skip);
    EXPECT_EQ(bad.error.id, "line-9");
    EXPECT_EQ(bad.error.status, "error");

    const auto utf8 = service::parseRequestLine("{\"id\":\"\xff\"}", 4);
    ASSERT_FALSE(utf8.ok);
    EXPECT_NE(utf8.error.error.find("UTF-8"), std::string::npos);

    const auto big = service::parseRequestLine("", 5, /*oversized=*/true);
    ASSERT_FALSE(big.ok);
    EXPECT_NE(big.error.error.find("size limit"), std::string::npos);
}

TEST(BatchStream, HostileInputFailsPerLineNeverTheStream)
{
    // Oversized line, binary garbage, malformed UTF-8, a valid job, and
    // a truncated final line (no newline): every bad line must produce
    // its own error response, the good job must still run, and the
    // stream must finish cleanly.
    std::string input;
    input += std::string(5000, 'x') + "\n";              // line 1: oversized
    input += "\x01\x02\x03 binary garbage\n";            // line 2: bad JSON
    input += "{\"id\":\"\xff\xfe\"}\n";                  // line 3: bad UTF-8
    input += "# annotated fixture comment\n";            // line 4: skip
    input += R"({"id":"good","scale":"F1","iters":5})" "\n"; // line 5: ok
    input += R"({"id":"trunc","scale":"F1")";            // line 6: truncated

    std::istringstream in(input);
    std::ostringstream out;
    service::SolveService svc{service::ServiceOptions{}};
    service::StreamLimits limits;
    limits.maxLineBytes = 4096;
    const auto stats = service::runJsonlStream(in, out, svc, limits);

    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.failed, 4);

    std::map<std::string, service::Json> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
        by_id.emplace(service::Json::parse(line).getString("id", ""),
                      service::Json::parse(line));
    ASSERT_EQ(by_id.size(), 5u);
    EXPECT_NE(by_id.at("line-1").getString("error", "").find("size limit"),
              std::string::npos);
    EXPECT_EQ(by_id.at("line-2").getString("status", ""), "error");
    EXPECT_NE(by_id.at("line-3").getString("error", "").find("UTF-8"),
              std::string::npos);
    EXPECT_EQ(by_id.at("good").getString("status", ""), "ok");
    EXPECT_EQ(by_id.at("line-6").getString("status", ""), "error")
        << "a truncated final line is a request, not silence";
}

// ------------------------------------------------- line framing (wire)

TEST(LineFramer, ReassemblesLinesAcrossArbitrarySplits)
{
    // The same byte stream must frame identically no matter how the
    // kernel fragments it: feed one byte at a time.
    const std::string stream = "{\"a\":1}\n\n{\"b\":2}\r\n";
    service::LineFramer framer(64);
    std::vector<std::string> lines;
    service::LineFramer::Line ln;
    for (char c : stream) {
        framer.feed(&c, 1);
        while (framer.next(ln))
            lines.push_back(ln.text);
    }
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "{\"a\":1}");
    EXPECT_EQ(lines[1], "");
    EXPECT_EQ(lines[2], "{\"b\":2}\r")
        << "framing is byte-faithful; the JSON parser owns whitespace";
    EXPECT_FALSE(framer.tail(ln)) << "no partial bytes remain";
}

TEST(LineFramer, OversizedLineFailsOnceAndDiscardsUnbuffered)
{
    service::LineFramer framer(8);
    // 32 bytes without a newline: the verdict must arrive as soon as
    // the buffer exceeds the bound, and the rest of the line must be
    // dropped without growing the buffer.
    const std::string big(32, 'x');
    framer.feed(big.data(), big.size());
    service::LineFramer::Line ln;
    ASSERT_TRUE(framer.next(ln));
    EXPECT_TRUE(ln.oversized);
    EXPECT_EQ(ln.lineno, 1);
    EXPECT_TRUE(framer.discarding());
    EXPECT_LE(framer.buffered(), 8u) << "discard must not buffer the tail";

    // More tail bytes, then the newline ends the discard; the next
    // line frames normally with the next line number.
    framer.feed("yyyy\n{\"ok\":1}\n", 14);
    ASSERT_TRUE(framer.next(ln));
    EXPECT_FALSE(ln.oversized);
    EXPECT_EQ(ln.text, "{\"ok\":1}");
    EXPECT_EQ(ln.lineno, 2);
    EXPECT_FALSE(framer.next(ln));
}

TEST(LineFramer, TailYieldsTheTruncatedFinalLine)
{
    service::LineFramer framer(64);
    framer.feed("{\"id\":\"a\"}\n{\"id\":\"tr", 20);
    service::LineFramer::Line ln;
    ASSERT_TRUE(framer.next(ln));
    EXPECT_EQ(ln.text, "{\"id\":\"a\"}");
    ASSERT_FALSE(framer.next(ln));
    ASSERT_TRUE(framer.tail(ln)) << "a truncated final line is a request";
    EXPECT_EQ(ln.text, "{\"id\":\"tr");
    EXPECT_EQ(ln.lineno, 2);
    EXPECT_FALSE(framer.tail(ln)) << "tail consumes";
}

// -------------------------------------------------- socket front end

namespace
{

/** The stable (non-timing) result fields must match the batch-mode
 * result bit for bit; %.17g serialization round-trips doubles. */
void
expectMatchesBatch(const service::Json &line,
                   const service::SolveResult &r)
{
    EXPECT_EQ(line.getString("status", ""), r.status) << r.id;
    EXPECT_EQ(line.getString("problem", ""), r.problem) << r.id;
    EXPECT_EQ(line.getString("solver", ""), r.solver) << r.id;
    EXPECT_EQ(line.getString("dist_hash", ""),
              service::distHashHex(r.distHash))
        << r.id << ": distribution must be bit-identical";
    const double cost = line.getNumber("best_cost", 0.0);
    EXPECT_EQ(0, std::memcmp(&cost, &r.bestCost, sizeof(double))) << r.id;
    const double top = line.getNumber("top_probability", -1.0);
    EXPECT_EQ(0, std::memcmp(&top, &r.topProbability, sizeof(double)))
        << r.id;
    EXPECT_EQ(line.getNumber("evaluations", -1.0),
              static_cast<double>(r.evaluations))
        << r.id;
    EXPECT_EQ(line.getNumber("iterations", -1.0),
              static_cast<double>(r.iterations))
        << r.id;
}

/** Raw loopback TCP connect for the wire-torture tests. @p rcvbufBytes
 * shrinks SO_RCVBUF before connect (it must be set pre-handshake to
 * bound the advertised window) so the server's send side fills fast. */
int
rawConnect(int port, int rcvbufBytes = 0)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (rcvbufBytes > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbufBytes,
                     sizeof rcvbufBytes);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof addr),
              0);
    return fd;
}

/** Blocking send of every byte of @p bytes. */
void
rawSendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const auto n =
            ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << "send failed at offset " << off;
        off += static_cast<std::size_t>(n);
    }
}

/**
 * Read until @p nlines complete lines arrived (newline stripped) or
 * @p timeout_ms passed. The first @p slowPrefixBytes bytes are read one
 * byte per @p slowDelayMs — the torture-test slow-reader pattern that
 * keeps the server's send side trickling while results queue behind it.
 */
std::vector<std::string>
rawReadLines(int fd, int nlines, int timeout_ms, int slowPrefixBytes = 0,
             int slowDelayMs = 10)
{
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::milliseconds(timeout_ms);
    std::vector<std::string> lines;
    std::string buf;
    std::size_t start = 0;
    long bytes_read = 0;
    char chunk[4096];
    while (static_cast<int>(lines.size()) < nlines
           && std::chrono::steady_clock::now() < deadline) {
        const bool slow = bytes_read < slowPrefixBytes;
        timeval tv{};
        tv.tv_sec = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        const auto n = ::recv(fd, chunk, slow ? 1 : sizeof chunk, 0);
        if (n == 0)
            break; // server closed
        if (n < 0)
            continue; // timeout tick: re-check the deadline
        bytes_read += n;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos;
        while ((pos = buf.find('\n', start)) != std::string::npos) {
            lines.push_back(buf.substr(start, pos - start));
            start = pos + 1;
        }
        if (slow)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slowDelayMs));
    }
    return lines;
}

} // namespace

/**
 * Both front-ends must behave identically on the wire: every socket
 * test runs against thread-per-connection (false) and the poll(2)
 * event loop (true). The bit-identity and reconciliation assertions
 * inside are the regression oracles for the event-loop rewrite.
 */
class SocketFrontEnd : public ::testing::TestWithParam<bool>
{
  protected:
    /** Server options with the front-end mode under test applied. */
    service::ServerOptions baseOpts() const
    {
        service::ServerOptions opts;
        opts.eventLoop = GetParam();
        return opts;
    }
};

INSTANTIATE_TEST_SUITE_P(FrontEnds, SocketFrontEnd, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "EventLoop"
                                               : "ThreadPerConn";
                         });

TEST_P(SocketFrontEnd, BitIdenticalToBatchUnderConcurrentConnections)
{
    const auto jobs = determinismSuite(); // 12 jobs, 3 structures

    // Batch-mode reference: the cross-checked ground truth.
    service::ServiceOptions so;
    so.workers = 2;
    const auto batch = service::SolveService(so).solveAll(jobs);

    // Socket mode: a fresh service behind the TCP front-end, the same
    // jobs spread over 4 concurrent client connections.
    service::SolveService svc(so);
    service::Server server(svc, baseOpts());
    server.start();

    constexpr int kConns = 4;
    std::mutex mu;
    std::map<std::string, std::string> lines; // id -> raw result line
    std::vector<std::thread> clients;
    for (int c = 0; c < kConns; ++c) {
        clients.emplace_back([&, c] {
            service::JsonlClient client(server.port());
            int sent = 0;
            for (std::size_t i = static_cast<std::size_t>(c);
                 i < jobs.size(); i += kConns) {
                client.sendLine(service::jobToJsonRequest(jobs[i]).dump());
                ++sent;
            }
            client.shutdownWrite();
            for (int i = 0; i < sent; ++i) {
                std::string line;
                ASSERT_TRUE(client.readLine(line, 60000))
                    << "conn " << c << " result " << i;
                const auto v = service::Json::parse(line);
                std::lock_guard<std::mutex> lock(mu);
                lines.emplace(v.getString("id", ""), line);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    server.drain();

    ASSERT_EQ(lines.size(), jobs.size());
    for (const auto &expect : batch) {
        ASSERT_EQ(expect.status, "ok") << expect.id;
        const auto it = lines.find(expect.id);
        ASSERT_NE(it, lines.end()) << expect.id;
        expectMatchesBatch(service::Json::parse(it->second), expect);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.connectionsAccepted, kConns);
    EXPECT_EQ(stats.requestsAccepted, static_cast<long>(jobs.size()));
    EXPECT_EQ(stats.resultsWritten, static_cast<long>(jobs.size()));
    EXPECT_EQ(stats.rejected, 0);
}

TEST_P(SocketFrontEnd, HostileInputFailsPerLineAndKeepsTheConnection)
{
    service::SolveService svc{service::ServiceOptions{}};
    auto opts = baseOpts();
    opts.maxLineBytes = 4096;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient client(server.port());
    client.sendLine("\x01\x02 binary garbage");          // line 1
    client.sendLine("{\"id\":\"\xff\xfe\"}");            // line 2: UTF-8
    client.sendLine(std::string(9000, 'x'));             // line 3: oversized
    client.sendLine(R"({"id":"good","scale":"F1","iters":5})"); // line 4
    client.sendRaw(R"({"id":"trunc","scale":"F1")");     // line 5: truncated
    client.shutdownWrite();

    std::map<std::string, service::Json> by_id;
    for (int i = 0; i < 5; ++i) {
        std::string line;
        ASSERT_TRUE(client.readLine(line, 60000)) << "response " << i;
        auto v = service::Json::parse(line);
        by_id.emplace(v.getString("id", ""), std::move(v));
    }
    ASSERT_EQ(by_id.size(), 5u);
    EXPECT_EQ(by_id.at("line-1").getString("status", ""), "error");
    EXPECT_NE(by_id.at("line-2").getString("error", "").find("UTF-8"),
              std::string::npos);
    EXPECT_NE(by_id.at("line-3").getString("error", "").find("size limit"),
              std::string::npos);
    EXPECT_EQ(by_id.at("good").getString("status", ""), "ok")
        << "a valid job after garbage must still run";
    EXPECT_EQ(by_id.at("line-5").getString("status", ""), "error")
        << "truncated final line must be answered, not dropped";

    server.drain();
    EXPECT_EQ(server.stats().lineErrors, 4);
    EXPECT_EQ(server.stats().requestsAccepted, 1);
}

TEST_P(SocketFrontEnd, OverloadAnswersRejectedInsteadOfQueueing)
{
    // One worker, in-flight bound 1: while the slow job occupies the
    // worker, every further request on the burst must be answered with
    // a status "rejected" line (the documented backpressure response).
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    auto opts = baseOpts();
    opts.maxInflight = 1;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient client(server.port());
    std::string burst;
    burst += R"({"id":"slow","scale":"K3","iters":200})" "\n";
    burst += R"({"id":"q1","scale":"F1","iters":5})" "\n";
    burst += R"({"id":"q2","scale":"F1","iters":5})" "\n";
    client.sendRaw(burst);

    int ok = 0, rejected = 0;
    for (int i = 0; i < 3; ++i) {
        std::string line;
        ASSERT_TRUE(client.readLine(line, 60000)) << "response " << i;
        const auto v = service::Json::parse(line);
        const auto status = v.getString("status", "");
        if (status == "ok") {
            ++ok;
            EXPECT_EQ(v.getString("id", ""), "slow");
        } else {
            ++rejected;
            EXPECT_EQ(status, "rejected");
            EXPECT_NE(v.getString("error", "").find("capacity"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(rejected, 2);
    server.drain();
    EXPECT_EQ(server.stats().rejected, 2);
}

TEST_P(SocketFrontEnd, PerConnectionRequestLimit)
{
    service::SolveService svc{service::ServiceOptions{}};
    auto opts = baseOpts();
    opts.maxRequestsPerConn = 2;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient client(server.port());
    std::string burst;
    burst += R"({"id":"a","scale":"F1","iters":5})" "\n";
    burst += R"({"id":"b","scale":"F1","iters":5})" "\n";
    burst += R"({"id":"c","scale":"F1","iters":5})" "\n";
    client.sendRaw(burst);

    int ok = 0, rejected = 0;
    for (int i = 0; i < 3; ++i) {
        std::string line;
        ASSERT_TRUE(client.readLine(line, 60000)) << "response " << i;
        const auto v = service::Json::parse(line);
        if (v.getString("status", "") == "rejected") {
            ++rejected;
            EXPECT_EQ(v.getString("id", ""), "c");
            EXPECT_NE(v.getString("error", "").find("request limit"),
                      std::string::npos);
        } else {
            ++ok;
            EXPECT_EQ(v.getString("status", ""), "ok");
        }
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(rejected, 1);
    // The limited connection is closed after its results flushed.
    std::string line;
    EXPECT_FALSE(client.readLine(line, 5000));

    // A truncated final line arriving at the limit must still be
    // answered (with the rejection), never silently dropped.
    service::JsonlClient trunc(server.port());
    trunc.sendLine(R"({"id":"t1","scale":"F1","iters":5})");
    trunc.sendLine(R"({"id":"t2","scale":"F1","iters":5})");
    trunc.sendRaw(R"({"id":"t3","scale":"F1")"); // no newline
    trunc.shutdownWrite();
    int answers = 0, trunc_rejected = 0;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(trunc.readLine(line, 60000)) << "response " << i;
        ++answers;
        const auto v = service::Json::parse(line);
        if (v.getString("status", "") == "rejected") {
            ++trunc_rejected;
            // The truncated JSON cannot yield its id; the synthesized
            // line id still correlates the rejection.
            EXPECT_EQ(v.getString("id", ""), "line-3");
        }
    }
    EXPECT_EQ(answers, 3);
    EXPECT_EQ(trunc_rejected, 1);
    server.drain();
}

TEST_P(SocketFrontEnd, ConnectionCapRefusesWithARejectedLine)
{
    service::SolveService svc{service::ServiceOptions{}};
    auto opts = baseOpts();
    opts.maxConnections = 1;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient first(server.port()); // holds the only slot
    // Give the accept loop a tick to register the first connection.
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    while (server.stats().connectionsOpen < 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_EQ(server.stats().connectionsOpen, 1);

    service::JsonlClient second(server.port());
    std::string line;
    ASSERT_TRUE(second.readLine(line, 60000));
    const auto v = service::Json::parse(line);
    EXPECT_EQ(v.getString("status", ""), "rejected");
    EXPECT_NE(v.getString("error", "").find("connection capacity"),
              std::string::npos);
    EXPECT_FALSE(second.readLine(line, 5000)) << "refused conn must close";

    // The surviving connection still works.
    first.sendLine(R"({"id":"a","scale":"F1","iters":5})");
    ASSERT_TRUE(first.readLine(line, 60000));
    EXPECT_EQ(service::Json::parse(line).getString("status", ""), "ok");
    server.drain();
    EXPECT_EQ(server.stats().connectionsRejected, 1);
}

TEST_P(SocketFrontEnd, IdleTimeoutClosesQuietConnections)
{
    service::SolveService svc{service::ServiceOptions{}};
    auto opts = baseOpts();
    opts.idleTimeoutMs = 150;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient client(server.port());
    client.sendLine(R"({"id":"a","scale":"F1","iters":5})");
    std::string line;
    ASSERT_TRUE(client.readLine(line, 60000));
    EXPECT_EQ(service::Json::parse(line).getString("status", ""), "ok");

    // No further traffic: the server must close the connection (EOF on
    // our side), not hold it forever.
    EXPECT_FALSE(client.readLine(line, 10000));
    server.drain();
    EXPECT_EQ(server.stats().idleCloses, 1);
    EXPECT_EQ(server.stats().connectionsOpen, 0);
}

TEST_P(SocketFrontEnd, GracefulDrainCompletesAcceptedJobs)
{
    service::ServiceOptions so;
    so.workers = 2;
    service::SolveService svc(so);
    service::Server server(svc, baseOpts());
    server.start();

    service::JsonlClient client(server.port());
    std::string burst;
    burst += R"({"id":"d1","scale":"F1","case":0,"seed":5,"iters":10})" "\n";
    burst += R"({"id":"d2","scale":"F1","case":1,"seed":6,"iters":10})" "\n";
    burst += R"({"id":"d3","scale":"K1","case":0,"seed":7,"iters":10})" "\n";
    client.sendRaw(burst);

    // Wait until all three are accepted, then drain mid-flight: every
    // accepted job must finish and its result reach the wire.
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(30);
    while (server.stats().requestsAccepted < 3
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_EQ(server.stats().requestsAccepted, 3);
    server.requestStop();
    server.drain();

    int ok = 0;
    for (int i = 0; i < 3; ++i) {
        std::string line;
        ASSERT_TRUE(client.readLine(line, 10000)) << "result " << i;
        if (service::Json::parse(line).getString("status", "") == "ok")
            ++ok;
    }
    EXPECT_EQ(ok, 3);
    EXPECT_EQ(server.stats().resultsWritten, 3);

    // The listener is gone: new connections must be refused.
    EXPECT_THROW(service::JsonlClient{server.port()}, FatalError);
}

// -------------------------------------- cancellation & fault injection

namespace
{

/** A job whose optimizer loop runs far longer (tens of seconds) than
 * any test step, so a cancel/deadline/disconnect always lands
 * mid-execution — while iteration boundaries stay milliseconds apart,
 * so the engine's token polls still stop it fast. (K3 at the default
 * depth converges in ~1 s; the deeper ansatz keeps it busy.) */
service::SolveJob
longJob(const std::string &id)
{
    service::SolveJob job;
    job.id = id;
    job.scale = "K3";
    job.layers = 6;
    job.seed = 11;
    job.maxIterations = 1 << 20;
    return job;
}

service::SolveJob
quickJob(const std::string &id, std::uint64_t seed = 11)
{
    service::SolveJob job;
    job.id = id;
    job.scale = "F1";
    job.seed = seed;
    job.maxIterations = 10;
    return job;
}

/** Spin until @p done() or the deadline; false on timeout. */
template <typename Pred>
bool
waitFor(Pred done, int timeout_ms = 30000)
{
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::milliseconds(timeout_ms);
    while (!done()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

} // namespace

TEST(FaultSpec, ParsesGrammarAndRejectsMalformedClauses)
{
    const auto spec = service::parseFaultSpec(
        "stall=0.5:400,conn_reset=0.1,read_delay=0.25:7,alloc_fail=1,"
        "seed=9");
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_DOUBLE_EQ(spec.stallProbability, 0.5);
    EXPECT_EQ(spec.stallMs, 400);
    EXPECT_DOUBLE_EQ(spec.connResetProbability, 0.1);
    EXPECT_DOUBLE_EQ(spec.readDelayProbability, 0.25);
    EXPECT_EQ(spec.readDelayMs, 7);
    EXPECT_DOUBLE_EQ(spec.allocFailProbability, 1.0);
    EXPECT_TRUE(spec.enabled());

    EXPECT_FALSE(service::FaultSpec{}.enabled());
    EXPECT_FALSE(service::parseFaultSpec("stall=0").enabled());

    EXPECT_THROW(service::parseFaultSpec("bogus=1"), FatalError);
    EXPECT_THROW(service::parseFaultSpec("stall=2"), FatalError);
    EXPECT_THROW(service::parseFaultSpec("stall=-0.1"), FatalError);
    EXPECT_THROW(service::parseFaultSpec("stall"), FatalError);
    EXPECT_THROW(service::parseFaultSpec("seed=x"), FatalError);
    EXPECT_THROW(service::parseFaultSpec("alloc_fail=0.5:100"), FatalError)
        << "a duration on a site without one must be rejected";
}

TEST(FaultInjector, DecisionSequenceIsDeterministicPerSeed)
{
    auto spec = service::parseFaultSpec("stall=0.37,seed=42");
    service::FaultInjector a(spec), b(spec);
    std::vector<bool> seq_a, seq_b;
    for (int i = 0; i < 256; ++i) {
        seq_a.push_back(a.fire(service::FaultInjector::Site::WorkerStall));
        seq_b.push_back(b.fire(service::FaultInjector::Site::WorkerStall));
    }
    EXPECT_EQ(seq_a, seq_b)
        << "same spec must replay the same fault sequence";
    EXPECT_GT(a.counts().stalls, 0u);
    EXPECT_LT(a.counts().stalls, 256u);

    spec.seed = 43;
    service::FaultInjector c(spec);
    std::vector<bool> seq_c;
    for (int i = 0; i < 256; ++i)
        seq_c.push_back(c.fire(service::FaultInjector::Site::WorkerStall));
    EXPECT_NE(seq_a, seq_c) << "a different seed must shuffle decisions";
}

TEST(Cancellation, UnfiredTokenIsABitwiseNoOp)
{
    // The checkpoint hook must never perturb the numeric or random
    // streams: a solve polled by a token that never fires is
    // bit-identical to an unpolled one.
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;
    const auto plain = svc.execute(quickJob("plain"), ctx);
    ASSERT_EQ(plain.status, "ok") << plain.error;

    service::CancelToken token;
    const auto polled = svc.execute(quickJob("polled"), ctx, &token);
    ASSERT_EQ(polled.status, "ok") << polled.error;
    EXPECT_EQ(plain.distHash, polled.distHash);
    EXPECT_EQ(0, std::memcmp(&plain.bestCost, &polled.bestCost,
                             sizeof(double)));
    EXPECT_EQ(plain.evaluations, polled.evaluations);
}

TEST(Cancellation, CancelBeforeStartAnswersCancelled)
{
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);

    std::mutex mu;
    std::map<std::string, service::SolveResult> results;
    const auto collect = [&](const service::SolveResult &r) {
        std::lock_guard<std::mutex> lock(mu);
        results[r.id] = r;
    };

    svc.submit(longJob("blocker"), collect);
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));
    svc.submit(quickJob("victim"), collect);
    ASSERT_TRUE(waitFor([&] { return svc.health().queued >= 1; }));

    EXPECT_EQ(svc.cancel("victim"), 1);
    EXPECT_EQ(svc.cancel("no-such-job"), 0);
    EXPECT_EQ(svc.cancel("blocker"), 1);
    svc.drain();

    ASSERT_EQ(results.count("victim"), 1u);
    EXPECT_EQ(results["victim"].status, "cancelled");
    EXPECT_NE(results["victim"].error.find("before execution"),
              std::string::npos);
    EXPECT_EQ(results["blocker"].status, "cancelled");
    EXPECT_EQ(svc.health().cancelledJobs, 2u);
}

TEST(Cancellation, MidExecutionCancelStopsFastAndFreesTheWorker)
{
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);

    service::SolveResult out;
    std::atomic<bool> done{false};
    svc.submit(longJob("victim"), [&](const service::SolveResult &r) {
        out = r;
        done = true;
    });
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));
    // Let the job get past compilation and into the optimizer loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    EXPECT_EQ(svc.cancel("victim"), 1);
    ASSERT_TRUE(waitFor([&] { return done.load(); }))
        << "a cancelled job must unwind within iterations, not run out "
           "its full budget";
    EXPECT_EQ(out.status, "cancelled");
    EXPECT_NE(out.error.find("cancelled"), std::string::npos);

    // The worker survives the unwind: the very next job must solve.
    const auto after = svc.solveAll({quickJob("after")});
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].status, "ok") << after[0].error;
}

TEST(Cancellation, DeadlineFiresMidExecutionAndWorkerIsReusable)
{
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);

    auto job = longJob("deadline");
    job.deadlineMs = 400;
    service::SolveResult out;
    std::atomic<bool> done{false};
    const auto t0 = std::chrono::steady_clock::now();
    svc.submit(job, [&](const service::SolveResult &r) {
        out = r;
        done = true;
    });
    ASSERT_TRUE(waitFor([&] { return done.load(); }, 60000));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    EXPECT_EQ(out.status, "expired");
    EXPECT_NE(out.error.find("deadline exceeded"), std::string::npos);
    EXPECT_GE(out.worker, 0) << "the job must have reached a worker";
    // 1 << 20 iterations would run for hours; stopping within a minute
    // proves the deadline cut execution short at a polling boundary.
    EXPECT_LT(elapsed, 60000);
    EXPECT_EQ(svc.health().expiredJobs, 1u);

    const auto after = svc.solveAll({quickJob("after")});
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].status, "ok") << after[0].error;
}

TEST(Cancellation, SiblingsOfACancelledJobStayBitIdentical)
{
    // Cancelling one job must not perturb concurrently running jobs:
    // siblings must match a fresh run without any cancellation, bit
    // for bit.
    const auto s1 = quickJob("s1", 11);
    const auto s2 = quickJob("s2", 13);
    service::ServiceOptions so;
    so.workers = 2;
    const auto baseline = service::SolveService(so).solveAll({s1, s2});
    ASSERT_EQ(baseline.size(), 2u);

    service::SolveService svc(so);
    std::mutex mu;
    std::map<std::string, service::SolveResult> results;
    const auto collect = [&](const service::SolveResult &r) {
        std::lock_guard<std::mutex> lock(mu);
        results[r.id] = r;
    };
    svc.submit(longJob("victim"), collect);
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));
    svc.submit(s1, collect);
    svc.submit(s2, collect);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(svc.cancel("victim"), 1);
    svc.drain();

    EXPECT_EQ(results["victim"].status, "cancelled");
    for (const auto &expect : baseline) {
        ASSERT_EQ(results.count(expect.id), 1u) << expect.id;
        const auto &got = results[expect.id];
        ASSERT_EQ(got.status, "ok") << got.error;
        EXPECT_EQ(got.distHash, expect.distHash) << expect.id;
        EXPECT_EQ(0, std::memcmp(&got.bestCost, &expect.bestCost,
                                 sizeof(double)))
            << expect.id;
        EXPECT_EQ(got.evaluations, expect.evaluations) << expect.id;
    }
}

TEST(FaultInjection, InjectedStallTripsTheWatchdog)
{
    service::FaultInjector fault(service::parseFaultSpec("stall=1:300"));
    service::ServiceOptions so;
    so.workers = 1;
    so.fault = &fault;
    so.stallThresholdMs = 50;
    so.watchdogTickMs = 5;
    service::SolveService svc(so);

    const auto results = svc.solveAll({quickJob("stalled")});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, "ok")
        << "a stall delays the job, it must not fail it: "
        << results[0].error;
    EXPECT_GE(fault.counts().stalls, 1u);
    EXPECT_GE(svc.health().stallsFlagged, 1u)
        << "the watchdog must flag a worker stuck past the threshold";
}

TEST(FaultInjection, InjectedAllocFailureFailsTheJobNotTheWorker)
{
    service::FaultInjector fault(service::parseFaultSpec("alloc_fail=1"));
    service::ServiceOptions so;
    so.workers = 1;
    so.fault = &fault;
    service::SolveService svc(so);

    const auto results = svc.solveAll({quickJob("doomed")});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, "error");
    EXPECT_NE(results[0].error.find("injected allocation failure"),
              std::string::npos);
    EXPECT_GE(fault.counts().allocFails, 1u);
}

TEST(RequestLine, ClassifiesControlRequests)
{
    const auto health = service::parseRequestLine(R"({"type":"health"})", 1);
    ASSERT_TRUE(health.ok);
    EXPECT_EQ(health.control, service::ControlKind::Health);

    const auto cancel = service::parseRequestLine(
        R"({"type":"cancel","id":"job-7"})", 2);
    ASSERT_TRUE(cancel.ok);
    EXPECT_EQ(cancel.control, service::ControlKind::Cancel);
    EXPECT_EQ(cancel.cancelId, "job-7");

    const auto no_id = service::parseRequestLine(R"({"type":"cancel"})", 3);
    ASSERT_FALSE(no_id.ok);
    EXPECT_NE(no_id.error.error.find("non-empty string 'id'"),
              std::string::npos);

    const auto unknown =
        service::parseRequestLine(R"({"type":"reboot"})", 4);
    ASSERT_FALSE(unknown.ok);
    EXPECT_NE(unknown.error.error.find("unknown request type"),
              std::string::npos);
}

TEST_P(SocketFrontEnd, CancelAndHealthControlRequests)
{
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    service::Server server(svc, baseOpts());
    server.start();

    service::JsonlClient submitter(server.port());
    submitter.sendLine(service::jobToJsonRequest(longJob("slow")).dump());
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));

    // A second connection probes and cancels — the control plane must
    // work even while the only worker is busy.
    service::JsonlClient control(server.port());
    control.sendLine(R"({"type":"health"})");
    std::string line;
    ASSERT_TRUE(control.readLine(line, 30000));
    const auto h = service::Json::parse(line);
    EXPECT_EQ(h.getString("type", ""), "health");
    EXPECT_EQ(h.getString("status", ""), "ok");
    EXPECT_EQ(h.getNumber("workers", 0.0), 1.0);
    EXPECT_GE(h.getNumber("inflight", 0.0), 1.0);
    EXPECT_GE(h.getNumber("connections_open", 0.0), 2.0);

    control.sendLine(R"({"type":"cancel","id":"slow"})");
    ASSERT_TRUE(control.readLine(line, 30000));
    const auto ack = service::Json::parse(line);
    EXPECT_EQ(ack.getString("type", ""), "cancel");
    EXPECT_EQ(ack.getString("id", ""), "slow");
    EXPECT_EQ(ack.getNumber("cancelled", 0.0), 1.0);

    // The submitter gets its job's terminal "cancelled" result.
    ASSERT_TRUE(submitter.readLine(line, 60000));
    const auto result = service::Json::parse(line);
    EXPECT_EQ(result.getString("id", ""), "slow");
    EXPECT_EQ(result.getString("status", ""), "cancelled");

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.cancelRequests, 1);
    EXPECT_EQ(stats.healthProbes, 1);
    EXPECT_EQ(stats.jobsCancelled, 1);
}

TEST_P(SocketFrontEnd, ClientDisconnectCancelsItsJobsAndFreesTheWorker)
{
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    service::Server server(svc, baseOpts());
    server.start();

    {
        service::JsonlClient doomed(server.port());
        doomed.sendLine(
            service::jobToJsonRequest(longJob("orphan")).dump());
        ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));
        // Abortive close (RST): the client vanished mid-job. A
        // half-close (EOF) must NOT trigger this — patient clients
        // half-close after their last request and wait for results.
        doomed.abortConnection();
    }
    ASSERT_TRUE(waitFor([&] { return svc.health().inflight == 0; }))
        << "the orphaned job must be cancelled, not run to completion";

    // The freed worker serves the next connection immediately.
    service::JsonlClient next(server.port());
    next.sendLine(service::jobToJsonRequest(quickJob("after")).dump());
    std::string line;
    ASSERT_TRUE(next.readLine(line, 60000));
    EXPECT_EQ(service::Json::parse(line).getString("status", ""), "ok");

    server.drain();
    EXPECT_GE(server.stats().disconnectCancels, 1);
    EXPECT_EQ(server.stats().jobsCancelled, 1);
    EXPECT_EQ(svc.health().cancelledJobs, 1u);
}

TEST(BatchStream, AnswersControlRequestsInline)
{
    std::istringstream in("{\"type\":\"health\"}\n"
                          "{\"type\":\"cancel\",\"id\":\"nothing\"}\n"
                          "{\"id\":\"j\",\"scale\":\"F1\",\"iters\":5}\n");
    std::ostringstream out;
    service::SolveService svc{service::ServiceOptions{}};
    const auto stats = service::runJsonlStream(in, out, svc);
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.healthProbes, 1);
    EXPECT_EQ(stats.cancelRequests, 1);

    int health_lines = 0, cancel_lines = 0, ok_lines = 0;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        const auto v = service::Json::parse(line);
        if (v.getString("type", "") == "health")
            ++health_lines;
        else if (v.getString("type", "") == "cancel") {
            ++cancel_lines;
            EXPECT_EQ(v.getNumber("cancelled", -1.0), 0.0);
        } else if (v.getString("status", "") == "ok")
            ++ok_lines;
    }
    EXPECT_EQ(health_lines, 1);
    EXPECT_EQ(cancel_lines, 1);
    EXPECT_EQ(ok_lines, 1);
}

// ------------------------------------------------------ observability

TEST(RequestLine, ClassifiesStatsControlRequest)
{
    const auto stats = service::parseRequestLine(R"({"type":"stats"})", 1);
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(stats.control, service::ControlKind::Stats);
}

TEST_P(SocketFrontEnd, StatsProbeJsonShapeOverSocket)
{
    service::ServiceOptions so;
    so.workers = 2;
    service::SolveService svc(so);
    service::Server server(svc, baseOpts());
    server.start();

    // Two jobs through the wire, then the probe reads the registry.
    service::JsonlClient jobs(server.port());
    jobs.sendLine(service::jobToJsonRequest(quickJob("s1", 11)).dump());
    jobs.sendLine(service::jobToJsonRequest(quickJob("s2", 12)).dump());
    jobs.shutdownWrite();
    std::string line;
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(jobs.readLine(line, 60000));

    service::JsonlClient probe(server.port());
    probe.sendLine(R"({"type":"stats"})");
    ASSERT_TRUE(probe.readLine(line, 30000));
    const auto v = service::Json::parse(line);
    EXPECT_EQ(v.getString("type", ""), "stats");
    EXPECT_EQ(v.getString("status", ""), "ok");
    for (const char *section : {"counters", "gauges", "histograms",
                                "cache", "registry", "scheduler",
                                "server"})
        ASSERT_NE(v.find(section), nullptr) << section;

    const auto *counters = v.find("counters");
    EXPECT_DOUBLE_EQ(counters->getNumber("jobs.submitted", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(counters->getNumber("jobs.completed", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(counters->getNumber("jobs.ok", -1.0), 2.0);

    // Stage histograms reconcile with the counters: every completed
    // job recorded exactly one queue and one total observation.
    const auto *hists = v.find("histograms");
    for (const char *name : {"stage.queue_ms", "stage.solve_ms",
                             "stage.total_ms"})
        EXPECT_DOUBLE_EQ(hists->find(name)->getNumber("count", -1.0), 2.0)
            << name;

    EXPECT_DOUBLE_EQ(
        v.find("scheduler")->getNumber("workers", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(
        v.find("server")->getNumber("stats_probes", -1.0), 1.0);
    server.drain();
    EXPECT_EQ(server.stats().statsProbes, 1);
}

TEST_P(SocketFrontEnd, StatsProbeNeverConsumesAnInflightSlot)
{
    // One worker, in-flight bound 1, the worker pinned by a slow job:
    // a stats probe must still answer "ok" (like health, it bypasses
    // the admission bound entirely).
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    auto server_options = baseOpts();
    server_options.maxInflight = 1;
    service::Server server(svc, server_options);
    server.start();

    service::JsonlClient submitter(server.port());
    submitter.sendLine(service::jobToJsonRequest(longJob("slow")).dump());
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));

    service::JsonlClient probe(server.port());
    probe.sendLine(R"({"type":"stats"})");
    std::string line;
    ASSERT_TRUE(probe.readLine(line, 30000));
    const auto v = service::Json::parse(line);
    EXPECT_EQ(v.getString("type", ""), "stats");
    EXPECT_EQ(v.getString("status", ""), "ok");
    EXPECT_DOUBLE_EQ(
        v.find("gauges")->getNumber("jobs.inflight", -1.0), 1.0);

    probe.sendLine(R"({"type":"cancel","id":"slow"})");
    ASSERT_TRUE(probe.readLine(line, 30000));
    server.drain();
    EXPECT_EQ(server.stats().rejected, 0)
        << "the probe must not have been counted against maxInflight";
}

TEST(Observability, CountersReconcileUnderConcurrentLoad)
{
    service::ServiceOptions so;
    so.workers = 2;
    service::SolveService svc(so);

    // Every worker pinned by a long job so the victim deterministically
    // sits in the queue (an idle worker would race the queued-state
    // check and could start it), then the queued job is cancelled
    // before it starts, plus a concurrent burst of ok jobs from several
    // submitter threads: afterwards the counters and the stage
    // histograms must agree exactly — metrics are monotonic
    // increments, never samples.
    svc.submit(longJob("blocker0"));
    svc.submit(longJob("blocker1"));
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 2; }));
    svc.submit(quickJob("victim", 99));
    ASSERT_TRUE(waitFor([&] { return svc.health().queued >= 1; }));
    EXPECT_EQ(svc.cancel("victim"), 1);
    EXPECT_EQ(svc.cancel("blocker0"), 1);
    EXPECT_EQ(svc.cancel("blocker1"), 1);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t)
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                svc.submit(quickJob(
                    "c" + std::to_string(t) + "/" + std::to_string(i),
                    100 + static_cast<std::uint64_t>(t * kPerThread + i)));
        });
    for (auto &t : submitters)
        t.join();
    svc.drain();

    constexpr std::uint64_t kTotal = kThreads * kPerThread + 3;
    auto &m = svc.metrics();
    EXPECT_EQ(m.counter("jobs.submitted").value(), kTotal);
    EXPECT_EQ(m.counter("jobs.completed").value(), kTotal);
    EXPECT_EQ(m.counter("jobs.ok").value(), kTotal - 3);
    EXPECT_EQ(m.counter("jobs.cancelled").value(), 3u);
    EXPECT_EQ(m.counter("jobs.error").value(), 0u);
    EXPECT_EQ(m.counter("jobs.ok").value()
                  + m.counter("jobs.error").value()
                  + m.counter("jobs.cancelled").value()
                  + m.counter("jobs.expired").value(),
              m.counter("jobs.completed").value());
    // Histogram counts are the same ground truth: one queue and one
    // total observation per completed job, one solve observation per
    // started job (the pre-start cancellation never reached a worker).
    EXPECT_EQ(m.histogram("stage.queue_ms").snapshot().count, kTotal);
    EXPECT_EQ(m.histogram("stage.total_ms").snapshot().count, kTotal);
    EXPECT_EQ(m.histogram("stage.solve_ms").snapshot().count,
              m.counter("jobs.started").value());
    EXPECT_DOUBLE_EQ(m.gauge("jobs.inflight").value(), 0.0);
}

TEST(Observability, KernelMixFlowsIntoMetricsAndTrace)
{
    // Every solve drives the engine's kernels through a per-job counter
    // sink; after a job the aggregated per-kernel calls/amps counters
    // and the modeled traffic totals must be visible in the registry,
    // and a traced job must carry the mix as a "kernels" span note.
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;
    obs::Trace trace(std::chrono::steady_clock::now());
    const auto r = svc.execute(quickJob("mix"), ctx, nullptr, &trace);
    ASSERT_EQ(r.status, "ok");

    auto &m = svc.metrics();
    EXPECT_GT(m.counter("kernels.bytes").value(), 0u);
    EXPECT_GT(m.counter("kernels.flops").value(), 0u);
    // The QAOA engine cannot evaluate an objective without at least
    // one expectation sweep; the per-kernel counters caught it.
    std::uint64_t amps = 0;
    for (std::size_t k = 0; k < obs::kKernelCount; ++k) {
        const auto id = static_cast<obs::KernelId>(k);
        amps += m.counter(std::string("kernels.")
                          + obs::kernelName(id) + ".amps")
                    .value();
    }
    EXPECT_GT(amps, 0u);

    bool saw_kernels = false;
    for (const auto &span : trace.spans())
        if (span.name == "kernels") {
            saw_kernels = true;
            EXPECT_NE(span.note.find("bytes="), std::string::npos)
                << span.note;
        }
    EXPECT_TRUE(saw_kernels);
}

TEST(Observability, TraceSpansOrderedAndNestedOnTheWire)
{
    // Through the batch stream so the parse span is on the timeline
    // too: the trace rides the result line as a "trace" object.
    std::istringstream in(
        "{\"id\":\"t\",\"scale\":\"F1\",\"iters\":10,\"trace\":true}\n");
    std::ostringstream out;
    service::SolveService svc{service::ServiceOptions{}};
    service::runJsonlStream(in, out, svc);

    const auto v = service::Json::parse(out.str());
    ASSERT_EQ(v.getString("status", ""), "ok");
    const auto *trace = v.find("trace");
    ASSERT_NE(trace, nullptr);
    const auto &spans = trace->find("spans")->items();
    ASSERT_GE(spans.size(), 6u);

    // Expected pipeline order; "optimize" nests inside "solve".
    std::vector<std::string> names;
    for (const auto &s : spans)
        names.push_back(s.getString("name", ""));
    const char *expected[] = {"parse",   "queue",    "resolve",
                              "compile", "solve",    "optimize",
                              "respond"};
    std::size_t at = 0;
    for (const char *name : expected) {
        const auto it = std::find(names.begin() + at, names.end(), name);
        ASSERT_NE(it, names.end()) << name << " missing or out of order";
        at = static_cast<std::size_t>(it - names.begin());
    }

    double prev_start = 0.0;
    std::map<std::string, std::pair<double, double>> bounds;
    for (const auto &s : spans) {
        const double start = s.getNumber("start_ms", -1.0);
        const double dur = s.getNumber("dur_ms", -1.0);
        EXPECT_GE(start, prev_start) << "spans must sort by start";
        EXPECT_GE(dur, 0.0);
        prev_start = start;
        bounds[s.getString("name", "")] = {start, start + dur};
    }
    // Nesting invariant: optimize inside solve, everything inside
    // [0, respond].
    EXPECT_GE(bounds["optimize"].first, bounds["solve"].first);
    EXPECT_LE(bounds["optimize"].second, bounds["solve"].second);
    EXPECT_LE(bounds["solve"].second, bounds["respond"].first);
    // The compile span carries the cache annotation (cold cache: miss).
    for (const auto &s : spans)
        if (s.getString("name", "") == "compile")
            EXPECT_EQ(s.getString("note", ""), "cache_miss");
}

TEST(Observability, TracingIsBitIdentical)
{
    // The answer must not depend on whether anyone watched it happen.
    const auto jobs = determinismSuite();
    service::ServiceOptions so;
    so.workers = 2;
    const auto plain = service::SolveService(so).solveAll(jobs);

    auto traced_jobs = jobs;
    for (auto &job : traced_jobs)
        job.trace = true;
    const auto traced = service::SolveService(so).solveAll(traced_jobs);

    ASSERT_EQ(plain.size(), traced.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].status, "ok");
        EXPECT_EQ(plain[i].distHash, traced[i].distHash) << plain[i].id;
        EXPECT_EQ(std::memcmp(&plain[i].bestCost, &traced[i].bestCost,
                              sizeof(double)),
                  0)
            << plain[i].id;
        EXPECT_EQ(plain[i].trace, nullptr)
            << "untraced jobs must not allocate a trace";
        ASSERT_NE(traced[i].trace, nullptr);
        EXPECT_FALSE(traced[i].trace->spans().empty());
    }
}

TEST(BatchStream, AnswersStatsInline)
{
    std::istringstream in("{\"id\":\"j\",\"scale\":\"F1\",\"iters\":5}\n"
                          "{\"type\":\"stats\"}\n");
    std::ostringstream out;
    service::SolveService svc{service::ServiceOptions{}};
    const auto stats = service::runJsonlStream(in, out, svc);
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.statsProbes, 1);

    bool saw_stats = false;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        const auto v = service::Json::parse(line);
        if (v.getString("type", "") != "stats")
            continue;
        saw_stats = true;
        // Batch mode answers control lines inline (without draining),
        // so the preceding job is submitted but may still be running.
        EXPECT_DOUBLE_EQ(
            v.find("counters")->getNumber("jobs.submitted", -1.0), 1.0);
    }
    EXPECT_TRUE(saw_stats);
}

// ------------------------------------------------ wire torture tests

TEST_P(SocketFrontEnd, WireTortureBytewiseSplitsSlowReadsAndHalfCloses)
{
    // Three hostile clients at once, each violating a different framing
    // assumption. Every line must be answered on the connection that
    // sent it — per-line errors for garbage, results for jobs, no
    // cross-connection corruption, both front-ends.
    service::ServiceOptions so;
    so.workers = 2;
    service::SolveService svc(so);
    service::Server server(svc, baseOpts());
    server.start();
    const int port = server.port();

    std::vector<std::thread> clients;

    // Client 0: sends one byte at a time (every recv on the server sees
    // a 1-byte fragment) and reads the responses one byte per 10 ms for
    // the first 40 bytes — the pathological slow reader.
    clients.emplace_back([&] {
        const int fd = rawConnect(port);
        std::string req;
        req += "\x01\x02 binary garbage\n"; // line 1: per-line error
        req += service::jobToJsonRequest(quickJob("t0", 21)).dump() + "\n";
        for (char c : req)
            rawSendAll(fd, std::string(1, c));
        ::shutdown(fd, SHUT_WR);
        const auto lines =
            rawReadLines(fd, 2, 60000, /*slowPrefixBytes=*/40);
        ::close(fd);
        ASSERT_EQ(lines.size(), 2u);
        const auto err = service::Json::parse(lines[0]);
        EXPECT_EQ(err.getString("id", ""), "line-1");
        EXPECT_EQ(err.getString("status", ""), "error");
        const auto ok = service::Json::parse(lines[1]);
        EXPECT_EQ(ok.getString("id", ""), "t0");
        EXPECT_EQ(ok.getString("status", ""), "ok") << lines[1];
    });

    // Client 1: splits one JSON request across two TCP segments with a
    // pause in between, then half-closes before the response arrives
    // (a patient client's EOF must not cancel its job).
    clients.emplace_back([&] {
        service::JsonlClient client(port);
        const std::string line =
            service::jobToJsonRequest(quickJob("t1", 22)).dump();
        client.sendRaw(line.substr(0, line.size() / 2));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        client.sendRaw(line.substr(line.size() / 2) + "\n");
        client.shutdownWrite(); // mid-response half-close
        std::string out;
        ASSERT_TRUE(client.readLine(out, 60000));
        const auto v = service::Json::parse(out);
        EXPECT_EQ(v.getString("id", ""), "t1");
        EXPECT_EQ(v.getString("status", ""), "ok") << out;
    });

    // Client 2: pipelines two jobs plus a truncated final line and
    // half-closes; the tail must be answered as a request, the jobs
    // must both run.
    clients.emplace_back([&] {
        service::JsonlClient client(port);
        client.sendLine(service::jobToJsonRequest(quickJob("t2a", 23)).dump());
        client.sendLine(service::jobToJsonRequest(quickJob("t2b", 24)).dump());
        client.sendRaw(R"({"id":"t2c","scale":"F1)"); // no newline
        client.shutdownWrite();
        std::map<std::string, std::string> by_id;
        for (int i = 0; i < 3; ++i) {
            std::string out;
            ASSERT_TRUE(client.readLine(out, 60000)) << "response " << i;
            by_id[service::Json::parse(out).getString("id", "")] = out;
        }
        ASSERT_EQ(by_id.count("t2a"), 1u);
        ASSERT_EQ(by_id.count("t2b"), 1u);
        ASSERT_EQ(by_id.count("line-3"), 1u)
            << "truncated tail must be answered";
        EXPECT_EQ(service::Json::parse(by_id["t2a"]).getString("status", ""),
                  "ok");
        EXPECT_EQ(service::Json::parse(by_id["t2b"]).getString("status", ""),
                  "ok");
        EXPECT_EQ(
            service::Json::parse(by_id["line-3"]).getString("status", ""),
            "error");
    });

    for (auto &t : clients)
        t.join();
    server.drain();

    const auto stats = server.stats();
    EXPECT_EQ(stats.connectionsAccepted, 3);
    EXPECT_EQ(stats.requestsAccepted, 4);
    EXPECT_EQ(stats.lineErrors, 2); // garbage + truncated tail
    EXPECT_EQ(stats.resultsWritten, 6);
    EXPECT_EQ(stats.disconnectCancels, 0)
        << "half-closes are patient clients, never disconnects";
}

TEST_P(SocketFrontEnd, MassDisconnectCancelsExactlyOncePerConnection)
{
    // 200 connections submit one job each behind a pinned worker, then
    // 100 of them RST mid-flight. The disconnect-cancellation path must
    // fire exactly once per dropped connection — the read-error and
    // failed-write paths race for the same connection and must not
    // double-count — and the books must still balance exactly.
    constexpr int kConns = 200;
    constexpr int kDropped = 100;

    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    auto opts = baseOpts();
    opts.maxConnections = 0; // the test IS the thousand-client shape
    opts.maxInflight = 0;
    service::Server server(svc, opts);
    server.start();

    // Pin the only worker so every connection's job stays queued (and
    // therefore cancellable-before-start) at RST time. The blocker must
    // outlast the whole test on its own — only cancellation ends it.
    service::JsonlClient control(server.port());
    auto blocker = longJob("blocker");
    blocker.maxIterations = 1 << 28;
    control.sendLine(service::jobToJsonRequest(blocker).dump());
    ASSERT_TRUE(waitFor([&] { return svc.health().running >= 1; }));

    std::vector<std::unique_ptr<service::JsonlClient>> conns;
    conns.reserve(kConns);
    for (int i = 0; i < kConns; ++i) {
        conns.push_back(
            std::make_unique<service::JsonlClient>(server.port()));
        conns.back()->sendLine(
            service::jobToJsonRequest(quickJob("m" + std::to_string(i)))
                .dump());
    }
    ASSERT_TRUE(waitFor(
        [&] { return server.stats().requestsAccepted == kConns + 1; },
        60000))
        << "accepted " << server.stats().requestsAccepted;

    // Queued-job cancellation is lazy (the tally lands when a worker
    // dequeues the job), and the only worker is pinned — so wait on the
    // server's own disconnect stat, which fires eagerly at RST time.
    for (int i = 0; i < kDropped; ++i)
        conns[static_cast<std::size_t>(i)]->abortConnection();
    ASSERT_TRUE(waitFor(
        [&] { return server.stats().disconnectCancels >= kDropped; },
        60000))
        << "every dropped connection must trip disconnect-cancel, got "
        << server.stats().disconnectCancels;

    // Unpin the worker; the 100 surviving jobs must all complete ok.
    control.sendLine(R"({"type":"cancel","id":"blocker"})");
    std::string line;
    ASSERT_TRUE(control.readLine(line, 30000)); // cancel ack
    ASSERT_TRUE(control.readLine(line, 60000)); // blocker's result
    EXPECT_EQ(service::Json::parse(line).getString("status", ""),
              "cancelled");

    for (int i = kDropped; i < kConns; ++i) {
        ASSERT_TRUE(
            conns[static_cast<std::size_t>(i)]->readLine(line, 60000))
            << "survivor " << i;
        const auto v = service::Json::parse(line);
        EXPECT_EQ(v.getString("id", ""), "m" + std::to_string(i));
        EXPECT_EQ(v.getString("status", ""), "ok") << line;
    }
    server.drain();

    const auto stats = server.stats();
    EXPECT_EQ(stats.disconnectCancels, kDropped)
        << "exactly once per dropped connection, no double counting";
    EXPECT_EQ(stats.jobsCancelled, kDropped + 1); // + the blocker
    EXPECT_EQ(stats.requestsAccepted, kConns + 1);

    // The PR 7 reconciliation contract holds through the carnage.
    auto &m = svc.metrics();
    EXPECT_EQ(m.counter("jobs.submitted").value(),
              static_cast<std::uint64_t>(kConns + 1));
    EXPECT_EQ(m.counter("jobs.completed").value(),
              m.counter("jobs.submitted").value());
    EXPECT_EQ(m.counter("jobs.ok").value(),
              static_cast<std::uint64_t>(kConns - kDropped));
    EXPECT_EQ(m.counter("jobs.ok").value() + m.counter("jobs.error").value()
                  + m.counter("jobs.cancelled").value()
                  + m.counter("jobs.expired").value(),
              m.counter("jobs.completed").value());
}

// -------------------------- event-loop-only write-backpressure tests

TEST(SocketServerEventLoop, SlowReaderBuffersWritesAndEventuallyDrains)
{
    // A 4 KiB send buffer against a 4 KiB receive window: kilobytes of
    // traced results cannot leave in one send(2). Workers must never
    // block on the socket — jobs complete while the client reads
    // nothing — and every buffered byte must surface once it reads.
    service::ServiceOptions so;
    so.workers = 2;
    service::SolveService svc(so);
    service::ServerOptions opts;
    opts.eventLoop = true;
    opts.sendBufferBytes = 4096;
    opts.maxInflight = 0;
    opts.sendTimeoutMs = 120000; // a slow CI box must not trip the stall
    service::Server server(svc, opts);
    server.start();

    const int fd = rawConnect(server.port(), /*rcvbufBytes=*/4096);
    constexpr int kJobs = 64;
    std::string burst;
    for (int i = 0; i < kJobs; ++i) {
        auto job = quickJob("bp" + std::to_string(i));
        job.trace = true; // traced result lines are kilobytes each
        burst += service::jobToJsonRequest(job).dump() + "\n";
    }
    rawSendAll(fd, burst);

    ASSERT_TRUE(waitFor(
        [&] {
            return svc.metrics().counter("jobs.completed").value() == kJobs;
        },
        120000))
        << "an unread client must not block the workers";

    const auto lines = rawReadLines(fd, kJobs, 120000);
    ::close(fd);
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(kJobs));
    std::set<std::string> ids;
    for (const auto &l : lines) {
        const auto v = service::Json::parse(l); // throws on corruption
        EXPECT_EQ(v.getString("status", ""), "ok") << l;
        ids.insert(v.getString("id", ""));
    }
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kJobs))
        << "every result surfaced exactly once";
    server.drain();
    EXPECT_GT(server.stats().partialWrites, 0)
        << "kilobytes into a 4 KiB window must need POLLOUT resumption";
}

TEST(SocketServerEventLoop, WriteStallBreaksTheConnectionInsteadOfWedging)
{
    // A client that stops reading entirely: once no byte has left for
    // sendTimeoutMs the loop must declare the connection broken and
    // close it — a stalled reader costs a buffer, never a wedged server
    // (the event-loop analogue of the SO_SNDTIMEO kill in the threaded
    // front-end).
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    service::ServerOptions opts;
    opts.eventLoop = true;
    opts.sendBufferBytes = 4096;
    opts.sendTimeoutMs = 300;
    opts.maxInflight = 0;
    service::Server server(svc, opts);
    server.start();

    const int fd = rawConnect(server.port(), /*rcvbufBytes=*/4096);
    constexpr int kJobs = 48;
    std::string burst;
    for (int i = 0; i < kJobs; ++i) {
        auto job = quickJob("ws" + std::to_string(i));
        job.trace = true;
        burst += service::jobToJsonRequest(job).dump() + "\n";
    }
    rawSendAll(fd, burst);

    ASSERT_TRUE(waitFor(
        [&] { return server.stats().connectionsOpen == 0; }, 120000))
        << "the stalled connection must be torn down";
    ::close(fd);
    server.drain();
}
