/**
 * @file
 * Unit tests for the shared LRU core (common/lru.hpp): recency
 * semantics (find touches, peek does not), byte accounting through
 * insert/replace/setBytes/erase, and the eviction sweep's contracts —
 * budget + minEntries floors, the evictable guard skipping entries in
 * place, and the on-evict callback firing exactly once per drop. The
 * two production owners layered on top (CompileCache, ProblemRegistry)
 * keep their behavior-level coverage in test_service / test_spec; this
 * file pins the substrate they now share.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/lru.hpp"

using chocoq::common::LruMap;

namespace
{

using Map = LruMap<std::string, int>;

std::vector<std::string>
keyOrder(const Map &m)
{
    return {m.keys().begin(), m.keys().end()};
}

TEST(LruMap, InsertFindPeek)
{
    Map m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find("a"), nullptr);
    EXPECT_EQ(m.peek("a"), nullptr);

    m.insert("a", 1, 10);
    m.insert("b", 2, 20);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.bytes(), 30u);

    int *a = m.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(*a, 1);
    ASSERT_NE(m.peek("b"), nullptr);
    EXPECT_EQ(*m.peek("b"), 2);
}

TEST(LruMap, FindTouchesPeekDoesNot)
{
    Map m;
    m.insert("a", 1);
    m.insert("b", 2);
    m.insert("c", 3);
    EXPECT_EQ(keyOrder(m), (std::vector<std::string>{"c", "b", "a"}));

    m.find("a");
    EXPECT_EQ(keyOrder(m), (std::vector<std::string>{"a", "c", "b"}));

    m.peek("b");
    EXPECT_EQ(keyOrder(m), (std::vector<std::string>{"a", "c", "b"}));
}

TEST(LruMap, InsertReplacesAndReaccounts)
{
    Map m;
    m.insert("a", 1, 10);
    m.insert("b", 2, 20);
    // Re-inserting an existing key replaces the value, moves the key to
    // most-recent, and swaps the byte estimate (no double counting).
    m.insert("a", 7, 5);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.bytes(), 25u);
    EXPECT_EQ(*m.peek("a"), 7);
    EXPECT_EQ(keyOrder(m), (std::vector<std::string>{"a", "b"}));
}

TEST(LruMap, EraseAndSetBytes)
{
    Map m;
    m.insert("a", 1, 10);
    m.insert("b", 2, 20);

    m.setBytes("a", 100);
    EXPECT_EQ(m.bytes(), 120u);
    m.setBytes("missing", 999); // no-op
    EXPECT_EQ(m.bytes(), 120u);

    EXPECT_TRUE(m.erase("a"));
    EXPECT_FALSE(m.erase("a"));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.bytes(), 20u);
    EXPECT_EQ(keyOrder(m), (std::vector<std::string>{"b"}));
}

TEST(LruMap, EvictsColdEndUntilBudgetHolds)
{
    Map m(Map::Options{/*maxBytes=*/100, /*minEntries=*/0});
    m.insert("a", 1, 40);
    m.insert("b", 2, 40);
    m.insert("c", 3, 40); // 120 bytes held; nothing evicts until asked.
    EXPECT_EQ(m.bytes(), 120u);

    // "a" is coldest; one drop brings 120 -> 80 <= 100.
    EXPECT_EQ(m.evictOverBudget(), 1u);
    EXPECT_EQ(m.bytes(), 80u);
    EXPECT_EQ(m.evictions(), 1u);
    EXPECT_EQ(m.peek("a"), nullptr);
    EXPECT_NE(m.peek("b"), nullptr);
    EXPECT_NE(m.peek("c"), nullptr);

    // Touching "b" protects it: the next overflow evicts "c" instead.
    m.find("b");
    m.insert("d", 4, 40);
    EXPECT_EQ(m.evictOverBudget(), 1u);
    EXPECT_EQ(m.peek("c"), nullptr);
    EXPECT_NE(m.peek("b"), nullptr);
}

TEST(LruMap, MinEntriesFloorAndUnboundedBudget)
{
    Map floor(Map::Options{/*maxBytes=*/10, /*minEntries=*/1});
    floor.insert("big", 1, 1000);
    // The sole entry stays even though it alone busts the budget.
    EXPECT_EQ(floor.evictOverBudget(), 0u);
    EXPECT_EQ(floor.size(), 1u);
    floor.insert("bigger", 2, 2000);
    // With two entries the floor allows exactly one drop (the cold
    // one), never the most recent insertion.
    EXPECT_EQ(floor.evictOverBudget(), 1u);
    EXPECT_EQ(floor.size(), 1u);
    EXPECT_NE(floor.peek("bigger"), nullptr);

    Map unbounded; // maxBytes = 0
    unbounded.insert("a", 1, 1 << 20);
    EXPECT_EQ(unbounded.evictOverBudget(), 0u);
    EXPECT_EQ(unbounded.size(), 1u);
}

TEST(LruMap, EvictableGuardSkipsInPlace)
{
    Map m(Map::Options{/*maxBytes=*/90, /*minEntries=*/0});
    m.insert("pinned", 1, 40);
    m.insert("b", 2, 40);
    m.insert("c", 3, 40);

    // "pinned" is the coldest but the guard protects it; the sweep must
    // keep walking and drop the next-coldest "b" (120 -> 80 <= 90).
    std::vector<std::string> dropped;
    const auto evictable = [](const std::string &k, const int &) {
        return k != "pinned";
    };
    const auto onEvict = [&dropped](const std::string &k, const int &) {
        dropped.push_back(k);
    };
    EXPECT_EQ(m.evictOverBudget(evictable, onEvict), 1u);
    EXPECT_EQ(dropped, (std::vector<std::string>{"b"}));
    EXPECT_NE(m.peek("pinned"), nullptr);
    EXPECT_NE(m.peek("c"), nullptr);

    // The skipped entry kept its cold recency slot: over budget again,
    // the sweep again steps past it and drops "c".
    m.insert("d", 4, 40);
    dropped.clear();
    EXPECT_EQ(m.evictOverBudget(evictable, onEvict), 1u);
    EXPECT_EQ(dropped, (std::vector<std::string>{"c"}));
    EXPECT_EQ(keyOrder(m), (std::vector<std::string>{"d", "pinned"}));
    EXPECT_EQ(m.evictions(), 2u);
}

TEST(LruMap, ClearResetsAccounting)
{
    Map m(Map::Options{/*maxBytes=*/10, /*minEntries=*/0});
    m.insert("a", 1, 20);
    m.insert("b", 2, 20);
    m.evictOverBudget();
    EXPECT_GT(m.evictions(), 0u);

    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.bytes(), 0u);
    EXPECT_EQ(m.evictions(), 0u);
    EXPECT_TRUE(m.keys().empty());

    m.insert("a", 5, 3);
    EXPECT_EQ(*m.peek("a"), 5);
    EXPECT_EQ(m.bytes(), 3u);
}

} // namespace
