#!/usr/bin/env bash
# Deterministic soak (tier-2): seeded open-loop traffic from bench_load
# against a real chocoq_serve process over loopback, then a clean
# SIGTERM drain. bench_load --check turns any protocol violation into a
# nonzero exit: malformed lines, per-connection sequence regressions,
# lost/duplicated/cross-connection responses, and a failed final
# counter reconciliation against the {"type":"stats"} probe.
#
# Opt-in by configuration so plain `ctest` (tier-1) never pays for it:
#   ctest -C soak -L soak --output-on-failure
# CHOCOQ_SOAK_SECONDS scales the traffic duration (default 60; CI uses
# a shorter window).
set -euo pipefail

BUILD_DIR="${1:-$(pwd)}"
SERVE="$BUILD_DIR/chocoq_serve"
BENCH="$BUILD_DIR/bench_load"
SECS="${CHOCOQ_SOAK_SECONDS:-60}"

for bin in "$SERVE" "$BENCH"; do
  if [ ! -x "$bin" ]; then
    echo "run_soak: missing binary $bin" >&2
    exit 1
  fi
done

workdir=$(mktemp -d)
server_pid=
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

# Ephemeral port; the server writes the bound port to a file.
"$SERVE" --listen 0 --event-loop --workers 2 --quiet \
  --port-file "$workdir/port.txt" &
server_pid=$!

for _ in $(seq 1 100); do
  [ -s "$workdir/port.txt" ] && break
  sleep 0.1
done
if [ ! -s "$workdir/port.txt" ]; then
  echo "run_soak: server never wrote its port file" >&2
  exit 1
fi
port=$(cat "$workdir/port.txt")

echo "run_soak: ${SECS}s of open-loop traffic at 64 connections (port $port)"
"$BENCH" --port "$port" --connections 64 --rates 100 \
  --duration-s "$SECS" --seed 7 --check \
  --out "$workdir/BENCH_soak.json"

# Graceful drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=
if [ "$rc" -ne 0 ]; then
  echo "run_soak: server exited $rc after SIGTERM (expected 0)" >&2
  exit 1
fi
echo "run_soak: ok"
