/**
 * @file
 * Tests for the FLP/GCP/KPP generators and the benchmark scale registry.
 */

#include <gtest/gtest.h>

#include "model/exact.hpp"
#include "problems/flp.hpp"
#include "problems/gcp.hpp"
#include "problems/kpp.hpp"
#include "problems/suite.hpp"

using namespace chocoq;

TEST(Flp, F1SizesMatchPaper)
{
    // F1 = 2F-1D: 6 variables, 3 constraints (paper Sec. V-C: "F1 ...
    // only consist of six variables and three constraints").
    Rng rng(1);
    problems::FlpConfig cfg;
    cfg.facilities = 2;
    cfg.demands = 1;
    const auto p = problems::makeFlp(cfg, rng);
    EXPECT_EQ(p.numVars(), 6);
    EXPECT_EQ(p.constraints().size(), 3u);
}

TEST(Flp, FeasibleSolutionsServeEveryDemand)
{
    Rng rng(2);
    problems::FlpConfig cfg;
    cfg.facilities = 3;
    cfg.demands = 2;
    const auto p = problems::makeFlp(cfg, rng);
    const problems::FlpLayout lay{3, 2};
    for (Basis x : model::enumerateFeasible(p, 200)) {
        for (int j = 0; j < 2; ++j) {
            int served = 0;
            for (int i = 0; i < 3; ++i)
                served += getBit(x, lay.x(i, j));
            EXPECT_EQ(served, 1);
            // Serving facility must be open.
            for (int i = 0; i < 3; ++i) {
                if (getBit(x, lay.x(i, j))) {
                    EXPECT_EQ(getBit(x, lay.y(i)), 1);
                }
            }
        }
    }
}

TEST(Flp, HasMixedSignConstraints)
{
    Rng rng(3);
    const auto p = problems::makeFlp({}, rng);
    EXPECT_FALSE(p.allSummationFormat());
}

TEST(Flp, OptimumOpensAtLeastOneFacility)
{
    Rng rng(4);
    const auto p = problems::makeFlp({}, rng);
    const auto exact = model::solveExact(p);
    ASSERT_TRUE(exact.feasible);
    int open = 0;
    for (int i = 0; i < 2; ++i)
        open += getBit(exact.optima.front(), i);
    EXPECT_GE(open, 1);
}

TEST(Gcp, G1SizesMatchPaper)
{
    // G1 needs 12 qubits (paper Sec. V-C).
    Rng rng(5);
    problems::GcpConfig cfg;
    cfg.vertices = 3;
    cfg.edgeCount = 1;
    cfg.colors = 3;
    const auto p = problems::makeGcp(cfg, rng);
    EXPECT_EQ(p.numVars(), 12);
    EXPECT_EQ(p.constraints().size(), 6u);
}

TEST(Gcp, FeasibleColoringsAreProper)
{
    Rng rng(6);
    problems::GcpConfig cfg;
    cfg.vertices = 3;
    cfg.colors = 3;
    cfg.edges = {{0, 1}, {1, 2}};
    const auto p = problems::makeGcp(cfg, rng);
    const problems::GcpLayout lay{3, 3, 2};
    for (Basis x : model::enumerateFeasible(p, 500)) {
        for (int v = 0; v < 3; ++v) {
            int colors = 0;
            for (int c = 0; c < 3; ++c)
                colors += getBit(x, lay.x(v, c));
            EXPECT_EQ(colors, 1);
        }
        for (int c = 0; c < 3; ++c) {
            EXPECT_FALSE(getBit(x, lay.x(0, c))
                         && getBit(x, lay.x(1, c)));
            EXPECT_FALSE(getBit(x, lay.x(1, c))
                         && getBit(x, lay.x(2, c)));
        }
    }
}

TEST(Gcp, OptimumPrefersCheapColors)
{
    // Triangle-free pair of vertices: both can take the cheapest color.
    Rng rng(7);
    problems::GcpConfig cfg;
    cfg.vertices = 2;
    cfg.colors = 2;
    cfg.edges = {{0, 1}};
    const auto p = problems::makeGcp(cfg, rng);
    const auto exact = model::solveExact(p);
    ASSERT_TRUE(exact.feasible);
    // With an edge, the two vertices must differ; cost stays minimal.
    EXPECT_GT(exact.feasibleCount, 0u);
}

TEST(Kpp, FeasiblePartitionsAreOneHot)
{
    Rng rng(8);
    problems::KppConfig cfg;
    cfg.vertices = 4;
    cfg.blocks = 2;
    cfg.edgeCount = 3;
    const auto p = problems::makeKpp(cfg, rng);
    EXPECT_EQ(p.numVars(), 8);
    EXPECT_TRUE(p.allSummationFormat());
    const problems::KppLayout lay{4, 2};
    for (Basis x : model::enumerateFeasible(p, 100))
        for (int v = 0; v < 4; ++v)
            EXPECT_EQ(getBit(x, lay.x(v, 0)) + getBit(x, lay.x(v, 1)), 1);
}

TEST(Kpp, BalancedModeEnforcesBlockSizes)
{
    Rng rng(9);
    problems::KppConfig cfg;
    cfg.vertices = 4;
    cfg.blocks = 2;
    cfg.edgeCount = 2;
    cfg.balanced = true;
    const auto p = problems::makeKpp(cfg, rng);
    EXPECT_EQ(p.constraints().size(), 6u);
    const problems::KppLayout lay{4, 2};
    for (Basis x : model::enumerateFeasible(p, 100)) {
        for (int b = 0; b < 2; ++b) {
            int in_block = 0;
            for (int v = 0; v < 4; ++v)
                in_block += getBit(x, lay.x(v, b));
            EXPECT_EQ(in_block, 2);
        }
    }
}

TEST(Kpp, CutObjectiveMatchesHandCount)
{
    Rng rng(10);
    problems::KppConfig cfg;
    cfg.vertices = 3;
    cfg.blocks = 2;
    cfg.edges = {{0, 1, 2}, {1, 2, 3}};
    const auto p = problems::makeKpp(cfg, rng);
    const problems::KppLayout lay{3, 2};
    // All three vertices in block 0: no cut edges.
    Basis x = 0;
    for (int v = 0; v < 3; ++v)
        x = setBit(x, lay.x(v, 0), 1);
    EXPECT_DOUBLE_EQ(p.objectiveOf(x), 0.0);
    // Vertex 1 alone in block 1 cuts both edges: cost 5.
    Basis y = setBit(setBit(x, lay.x(1, 0), 0), lay.x(1, 1), 1);
    EXPECT_DOUBLE_EQ(p.objectiveOf(y), 5.0);
}

TEST(Suite, ScaleTableMatchesDesignDoc)
{
    using problems::Scale;
    EXPECT_EQ(problems::scaleNumVars(Scale::F1), 6);
    EXPECT_EQ(problems::scaleNumConstraints(Scale::F1), 3);
    EXPECT_EQ(problems::scaleNumVars(Scale::F4), 28);
    EXPECT_EQ(problems::scaleNumVars(Scale::G1), 12);
    EXPECT_EQ(problems::scaleNumVars(Scale::K1), 8);
    EXPECT_EQ(problems::scaleName(Scale::G3), "G3");
    EXPECT_EQ(problems::scaleConfig(Scale::F1), "2F-1D");
}

/** Every scale generates consistent, feasible, deterministic cases. */
class SuiteScales : public ::testing::TestWithParam<problems::Scale>
{
};

TEST_P(SuiteScales, GeneratedCaseMatchesRegistry)
{
    const auto p = problems::makeCase(GetParam(), 0);
    EXPECT_EQ(p.numVars(), problems::scaleNumVars(GetParam()));
    EXPECT_EQ(static_cast<int>(p.constraints().size()),
              problems::scaleNumConstraints(GetParam()));
}

TEST_P(SuiteScales, CasesAreFeasibleAndDeterministic)
{
    const auto a = problems::makeCase(GetParam(), 3);
    const auto b = problems::makeCase(GetParam(), 3);
    EXPECT_EQ(a.objective().str(), b.objective().str());
    EXPECT_TRUE(model::findFeasible(a).has_value()) << a.name();
    // Different indices give different instances (objective jitter).
    const auto c = problems::makeCase(GetParam(), 4);
    EXPECT_NE(a.objective().str(), c.objective().str());
}

INSTANTIATE_TEST_SUITE_P(
    AllScales, SuiteScales,
    ::testing::ValuesIn(chocoq::problems::allScales()),
    [](const ::testing::TestParamInfo<chocoq::problems::Scale> &info) {
        return chocoq::problems::scaleName(info.param);
    });
