# Empty dependencies file for test_movebasis.
# This may be replaced when dependencies are built.
