file(REMOVE_RECURSE
  "CMakeFiles/test_movebasis.dir/tests/test_movebasis.cpp.o"
  "CMakeFiles/test_movebasis.dir/tests/test_movebasis.cpp.o.d"
  "test_movebasis"
  "test_movebasis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_movebasis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
