file(REMOVE_RECURSE
  "CMakeFiles/example_graph_coloring.dir/examples/graph_coloring.cpp.o"
  "CMakeFiles/example_graph_coloring.dir/examples/graph_coloring.cpp.o.d"
  "example_graph_coloring"
  "example_graph_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
