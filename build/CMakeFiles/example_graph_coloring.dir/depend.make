# Empty dependencies file for example_graph_coloring.
# This may be replaced when dependencies are built.
