file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hardware.dir/bench/bench_fig10_hardware.cpp.o"
  "CMakeFiles/bench_fig10_hardware.dir/bench/bench_fig10_hardware.cpp.o.d"
  "bench_fig10_hardware"
  "bench_fig10_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
