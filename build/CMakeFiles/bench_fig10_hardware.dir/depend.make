# Empty dependencies file for bench_fig10_hardware.
# This may be replaced when dependencies are built.
