file(REMOVE_RECURSE
  "libchocoq.a"
)
