
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "CMakeFiles/chocoq.dir/src/circuit/circuit.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/transpile.cpp" "CMakeFiles/chocoq.dir/src/circuit/transpile.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/circuit/transpile.cpp.o.d"
  "/root/repo/src/common/membytes.cpp" "CMakeFiles/chocoq.dir/src/common/membytes.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/common/membytes.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/chocoq.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/chocoq.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/common/table.cpp.o.d"
  "/root/repo/src/core/chocoq_solver.cpp" "CMakeFiles/chocoq.dir/src/core/chocoq_solver.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/core/chocoq_solver.cpp.o.d"
  "/root/repo/src/core/circuits.cpp" "CMakeFiles/chocoq.dir/src/core/circuits.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/core/circuits.cpp.o.d"
  "/root/repo/src/core/commute.cpp" "CMakeFiles/chocoq.dir/src/core/commute.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/core/commute.cpp.o.d"
  "/root/repo/src/core/eliminate.cpp" "CMakeFiles/chocoq.dir/src/core/eliminate.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/core/eliminate.cpp.o.d"
  "/root/repo/src/core/movebasis.cpp" "CMakeFiles/chocoq.dir/src/core/movebasis.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/core/movebasis.cpp.o.d"
  "/root/repo/src/core/qaoa.cpp" "CMakeFiles/chocoq.dir/src/core/qaoa.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/core/qaoa.cpp.o.d"
  "/root/repo/src/device/device.cpp" "CMakeFiles/chocoq.dir/src/device/device.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/device/device.cpp.o.d"
  "/root/repo/src/linalg/expm.cpp" "CMakeFiles/chocoq.dir/src/linalg/expm.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/linalg/expm.cpp.o.d"
  "/root/repo/src/linalg/givens.cpp" "CMakeFiles/chocoq.dir/src/linalg/givens.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/linalg/givens.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "CMakeFiles/chocoq.dir/src/linalg/matrix.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/linalg/matrix.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "CMakeFiles/chocoq.dir/src/metrics/stats.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/metrics/stats.cpp.o.d"
  "/root/repo/src/model/exact.cpp" "CMakeFiles/chocoq.dir/src/model/exact.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/model/exact.cpp.o.d"
  "/root/repo/src/model/polynomial.cpp" "CMakeFiles/chocoq.dir/src/model/polynomial.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/model/polynomial.cpp.o.d"
  "/root/repo/src/model/problem.cpp" "CMakeFiles/chocoq.dir/src/model/problem.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/model/problem.cpp.o.d"
  "/root/repo/src/optimize/cobyla.cpp" "CMakeFiles/chocoq.dir/src/optimize/cobyla.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/optimize/cobyla.cpp.o.d"
  "/root/repo/src/optimize/factory.cpp" "CMakeFiles/chocoq.dir/src/optimize/factory.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/optimize/factory.cpp.o.d"
  "/root/repo/src/optimize/neldermead.cpp" "CMakeFiles/chocoq.dir/src/optimize/neldermead.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/optimize/neldermead.cpp.o.d"
  "/root/repo/src/optimize/spsa.cpp" "CMakeFiles/chocoq.dir/src/optimize/spsa.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/optimize/spsa.cpp.o.d"
  "/root/repo/src/problems/flp.cpp" "CMakeFiles/chocoq.dir/src/problems/flp.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/problems/flp.cpp.o.d"
  "/root/repo/src/problems/gcp.cpp" "CMakeFiles/chocoq.dir/src/problems/gcp.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/problems/gcp.cpp.o.d"
  "/root/repo/src/problems/kpp.cpp" "CMakeFiles/chocoq.dir/src/problems/kpp.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/problems/kpp.cpp.o.d"
  "/root/repo/src/problems/suite.cpp" "CMakeFiles/chocoq.dir/src/problems/suite.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/problems/suite.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "CMakeFiles/chocoq.dir/src/sim/executor.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/sim/executor.cpp.o.d"
  "/root/repo/src/sim/parallel.cpp" "CMakeFiles/chocoq.dir/src/sim/parallel.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/sim/parallel.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "CMakeFiles/chocoq.dir/src/sim/statevector.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/sim/statevector.cpp.o.d"
  "/root/repo/src/sim/unitary.cpp" "CMakeFiles/chocoq.dir/src/sim/unitary.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/sim/unitary.cpp.o.d"
  "/root/repo/src/solvers/cyclic.cpp" "CMakeFiles/chocoq.dir/src/solvers/cyclic.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/solvers/cyclic.cpp.o.d"
  "/root/repo/src/solvers/hea.cpp" "CMakeFiles/chocoq.dir/src/solvers/hea.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/solvers/hea.cpp.o.d"
  "/root/repo/src/solvers/penalty.cpp" "CMakeFiles/chocoq.dir/src/solvers/penalty.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/solvers/penalty.cpp.o.d"
  "/root/repo/src/solvers/trotter.cpp" "CMakeFiles/chocoq.dir/src/solvers/trotter.cpp.o" "gcc" "CMakeFiles/chocoq.dir/src/solvers/trotter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
