# Empty dependencies file for chocoq.
# This may be replaced when dependencies are built.
