file(REMOVE_RECURSE
  "CMakeFiles/test_commute.dir/tests/test_commute.cpp.o"
  "CMakeFiles/test_commute.dir/tests/test_commute.cpp.o.d"
  "test_commute"
  "test_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
