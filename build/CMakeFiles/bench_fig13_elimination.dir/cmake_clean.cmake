file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_elimination.dir/bench/bench_fig13_elimination.cpp.o"
  "CMakeFiles/bench_fig13_elimination.dir/bench/bench_fig13_elimination.cpp.o.d"
  "bench_fig13_elimination"
  "bench_fig13_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
