# Empty dependencies file for bench_fig13_elimination.
# This may be replaced when dependencies are built.
