file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_constraints.dir/bench/bench_fig8_constraints.cpp.o"
  "CMakeFiles/bench_fig8_constraints.dir/bench/bench_fig8_constraints.cpp.o.d"
  "bench_fig8_constraints"
  "bench_fig8_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
