# Empty dependencies file for bench_fig8_constraints.
# This may be replaced when dependencies are built.
