file(REMOVE_RECURSE
  "CMakeFiles/test_eliminate.dir/tests/test_eliminate.cpp.o"
  "CMakeFiles/test_eliminate.dir/tests/test_eliminate.cpp.o.d"
  "test_eliminate"
  "test_eliminate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eliminate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
