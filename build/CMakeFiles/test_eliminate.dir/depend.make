# Empty dependencies file for test_eliminate.
# This may be replaced when dependencies are built.
