# Empty dependencies file for example_k_partition.
# This may be replaced when dependencies are built.
