file(REMOVE_RECURSE
  "CMakeFiles/example_k_partition.dir/examples/k_partition.cpp.o"
  "CMakeFiles/example_k_partition.dir/examples/k_partition.cpp.o.d"
  "example_k_partition"
  "example_k_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_k_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
