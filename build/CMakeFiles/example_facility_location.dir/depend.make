# Empty dependencies file for example_facility_location.
# This may be replaced when dependencies are built.
