file(REMOVE_RECURSE
  "CMakeFiles/example_facility_location.dir/examples/facility_location.cpp.o"
  "CMakeFiles/example_facility_location.dir/examples/facility_location.cpp.o.d"
  "example_facility_location"
  "example_facility_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_facility_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
