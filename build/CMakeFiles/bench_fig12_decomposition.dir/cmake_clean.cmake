file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_decomposition.dir/bench/bench_fig12_decomposition.cpp.o"
  "CMakeFiles/bench_fig12_decomposition.dir/bench/bench_fig12_decomposition.cpp.o.d"
  "bench_fig12_decomposition"
  "bench_fig12_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
