# Empty dependencies file for bench_fig12_decomposition.
# This may be replaced when dependencies are built.
