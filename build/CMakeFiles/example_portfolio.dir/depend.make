# Empty dependencies file for example_portfolio.
# This may be replaced when dependencies are built.
