file(REMOVE_RECURSE
  "CMakeFiles/example_portfolio.dir/examples/portfolio.cpp.o"
  "CMakeFiles/example_portfolio.dir/examples/portfolio.cpp.o.d"
  "example_portfolio"
  "example_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
