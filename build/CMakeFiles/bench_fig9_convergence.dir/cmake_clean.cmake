file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_convergence.dir/bench/bench_fig9_convergence.cpp.o"
  "CMakeFiles/bench_fig9_convergence.dir/bench/bench_fig9_convergence.cpp.o.d"
  "bench_fig9_convergence"
  "bench_fig9_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
