# Empty dependencies file for bench_fig9_convergence.
# This may be replaced when dependencies are built.
