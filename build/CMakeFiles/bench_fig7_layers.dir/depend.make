# Empty dependencies file for bench_fig7_layers.
# This may be replaced when dependencies are built.
