file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_layers.dir/bench/bench_fig7_layers.cpp.o"
  "CMakeFiles/bench_fig7_layers.dir/bench/bench_fig7_layers.cpp.o.d"
  "bench_fig7_layers"
  "bench_fig7_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
