#!/usr/bin/env python3
"""Minimal JSONL client for chocoq_serve --listen (stdlib only).

Connects to 127.0.0.1:PORT, streams stdin to the server, half-closes
the write side (EOF tells the server no more requests are coming), and
prints every result line to stdout until the server closes the
connection. Used by the CI socket smoke test and handy for operators
without nc:

    printf '{"scale":"F1"}\n' | socket_client.py 7077

Exit status: 0 on a clean close, 2 on usage/connection errors.
"""

import socket
import sys


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        port = int(argv[1])
    except ValueError:
        print(f"not a port number: {argv[1]!r}", file=sys.stderr)
        return 2
    requests = sys.stdin.buffer.read()
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        print(f"cannot connect to 127.0.0.1:{port}: {e}", file=sys.stderr)
        return 2
    with conn:
        conn.sendall(requests)
        conn.shutdown(socket.SHUT_WR)
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            sys.stdout.buffer.write(chunk)
    sys.stdout.buffer.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
