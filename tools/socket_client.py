#!/usr/bin/env python3
"""Minimal JSONL client for chocoq_serve --listen (stdlib only).

Connects to 127.0.0.1:PORT, streams requests to the server, half-closes
the write side (EOF tells the server no more requests are coming), and
prints every result line to stdout until the server closes the
connection. Used by the CI socket smoke test and handy for operators
without nc:

    printf '{"scale":"F1"}\n' | socket_client.py 7077

Requests come from stdin by default. With --problem FILE the client
instead builds one inline-problem request (see docs/protocol.md) from
the problem-spec JSON in FILE — e.g. the output of
`chocoq_serve --dump-spec F1:0` or a hand-written model:

    socket_client.py 7077 --problem model.json --id mine --seed 11

Extra job fields ride along as KEY=VALUE pairs (numbers and booleans
are detected, everything else stays a string):

    socket_client.py 7077 --problem model.json iters=20 solver=penalty

With --max-retries N the client retries transient failures — a
"rejected" or "expired" response, a connection reset, or a connection
that closed before answering — up to N times per request, on a fresh
connection each round, with exponential backoff plus jitter between
rounds. Retry mode needs to correlate responses to requests, so every
request line must be a JSON object; requests without an "id" get a
synthetic "retry-<line>" id (echoed in their responses). Control
requests ({"type":"cancel"} / {"type":"health"}) are not retryable and
are rejected in retry mode. Without --max-retries (the default) the
client is a byte-faithful pipe, exactly as before.

Exit status: 0 on a clean close (retry mode: every request resolved),
2 on usage/connection errors or when retries are exhausted.
"""

import json
import random
import socket
import sys
import time

# Transient response statuses worth resubmitting: "rejected" is
# backpressure (the server asked us to come back later), "expired" is a
# deadline that re-arms from zero on resubmission.
RETRYABLE_STATUSES = ("rejected", "expired")

# Backoff schedule: BASE * 2^round seconds, capped, plus up to 100%
# jitter so synchronized clients don't re-dogpile a loaded server.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


def parse_value(raw: str):
    """KEY=VALUE values: JSON scalars when they parse, strings otherwise."""
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def usage_error(message: str):
    """Usage errors exit 2, like every other path (see module doc)."""
    print(message, file=sys.stderr)
    raise SystemExit(2)


def build_inline_request(args: list) -> dict:
    """Consume --problem FILE / --id ID / --seed N / KEY=VALUE args."""
    job = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("--problem", "--id", "--seed"):
            if i + 1 >= len(args):
                usage_error(f"missing value for {arg}")
            value = args[i + 1]
            i += 2
            if arg == "--problem":
                with open(value, encoding="utf-8") as f:
                    job["problem"] = json.load(f)
            elif arg == "--id":
                job["id"] = value
            else:
                job["seed"] = parse_value(value)
        elif "=" in arg:
            key, _, raw = arg.partition("=")
            job[key] = parse_value(raw)
            i += 1
        else:
            usage_error(f"unrecognized argument: {arg!r}")
    if "problem" not in job:
        usage_error("--problem FILE is required in inline mode")
    return job


def stream_once(port: int, payload: bytes) -> int:
    """Pre-retry behavior: one connection, bytes in, bytes out."""
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        print(f"cannot connect to 127.0.0.1:{port}: {e}", file=sys.stderr)
        return 2
    with conn:
        conn.sendall(payload)
        conn.shutdown(socket.SHUT_WR)
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            sys.stdout.buffer.write(chunk)
    sys.stdout.buffer.flush()
    return 0


def attempt_round(port: int, batch: list):
    """One connection carrying every still-unresolved request.

    Returns (responses_by_id, error_str_or_None). A connection-level
    error is not fatal to the round: responses received before the
    failure still count, and whatever went unanswered is retried.
    """
    responses = {}
    error = None
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        return responses, f"connect: {e}"
    buf = b""
    try:
        with conn:
            payload = b"".join(
                (json.dumps(obj) + "\n").encode() for obj in batch
            )
            conn.sendall(payload)
            conn.shutdown(socket.SHUT_WR)
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, _, buf = buf.partition(b"\n")
                    if not line.strip():
                        continue
                    try:
                        resp = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(resp, dict):
                        responses.setdefault(resp.get("id"), []).append(resp)
    except OSError as e:
        error = f"connection failed mid-stream: {e}"
    return responses, error


def run_with_retries(port: int, requests: list, max_retries: int) -> int:
    """Resolve every request, resubmitting transient failures.

    Responses print (one JSON line each) as their request resolves —
    either a terminal status, or the last transient answer once retries
    run out.
    """
    items = []
    for n, obj in enumerate(requests):
        if not isinstance(obj, dict):
            usage_error(
                f"--max-retries requires JSON object requests; "
                f"line {n + 1} is not an object"
            )
        if obj.get("type") in ("cancel", "health"):
            usage_error(
                "--max-retries cannot carry control requests "
                "(cancel/health); send them without retries"
            )
        if not obj.get("id"):
            obj = dict(obj, id=f"retry-{n + 1}")
        items.append(obj)

    unresolved = list(range(len(items)))
    last_seen = {}  # index -> last (retryable) response observed
    for round_no in range(max_retries + 1):
        batch = [items[i] for i in unresolved]
        responses, error = attempt_round(port, batch)
        if error is not None:
            print(f"socket_client: {error}", file=sys.stderr)

        still = []
        for i in unresolved:
            matches = responses.get(items[i]["id"])
            resp = matches.pop(0) if matches else None
            if resp is None:
                # Connection died before this request was answered.
                still.append(i)
            elif resp.get("status") in RETRYABLE_STATUSES:
                last_seen[i] = resp
                still.append(i)
            else:
                # Compact separators match the server's wire format, so
                # downstream greps/diffs treat retried and direct output
                # the same way.
                sys.stdout.write(json.dumps(resp, separators=(",", ":")) + "\n")
        unresolved = still
        sys.stdout.flush()
        if not unresolved:
            return 0
        if round_no < max_retries:
            delay = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2**round_no))
            delay += random.uniform(0.0, delay)
            print(
                f"socket_client: {len(unresolved)} request(s) unresolved, "
                f"retry {round_no + 1}/{max_retries} in {delay:.2f}s",
                file=sys.stderr,
            )
            time.sleep(delay)

    # Retries exhausted: surface the last transient answer (if any) so
    # the caller sees *why* each request never resolved.
    for i in unresolved:
        if i in last_seen:
            sys.stdout.write(json.dumps(last_seen[i], separators=(",", ":")) + "\n")
    sys.stdout.flush()
    print(
        f"socket_client: gave up on {len(unresolved)} request(s) after "
        f"{max_retries} retries",
        file=sys.stderr,
    )
    return 2


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        port = int(argv[1])
    except ValueError:
        print(f"not a port number: {argv[1]!r}", file=sys.stderr)
        return 2

    # --max-retries applies in both modes, so lift it out before the
    # inline-request builder sees the remaining args.
    args = list(argv[2:])
    max_retries = 0
    i = 0
    while i < len(args):
        if args[i] == "--max-retries":
            if i + 1 >= len(args):
                usage_error("missing value for --max-retries")
            try:
                max_retries = int(args[i + 1])
            except ValueError:
                max_retries = -1
            if max_retries < 0:
                usage_error(
                    f"--max-retries expects a non-negative integer, "
                    f"got {args[i + 1]!r}"
                )
            del args[i : i + 2]
        else:
            i += 1

    if args:
        requests = [build_inline_request(args)]
        payload = (json.dumps(requests[0]) + "\n").encode()
    else:
        payload = sys.stdin.buffer.read()
        requests = None

    if max_retries == 0:
        return stream_once(port, payload)

    if requests is None:
        requests = []
        for n, line in enumerate(payload.splitlines()):
            if not line.strip():
                continue
            try:
                requests.append(json.loads(line))
            except ValueError:
                usage_error(
                    f"--max-retries requires parseable JSON requests; "
                    f"line {n + 1} is not JSON"
                )
    return run_with_retries(port, requests, max_retries)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
