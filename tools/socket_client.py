#!/usr/bin/env python3
"""Minimal JSONL client for chocoq_serve --listen (stdlib only).

Connects to 127.0.0.1:PORT, streams requests to the server, half-closes
the write side (EOF tells the server no more requests are coming), and
prints every result line to stdout until the server closes the
connection. Used by the CI socket smoke test and handy for operators
without nc:

    printf '{"scale":"F1"}\n' | socket_client.py 7077

Requests come from stdin by default. With --problem FILE the client
instead builds one inline-problem request (see docs/protocol.md) from
the problem-spec JSON in FILE — e.g. the output of
`chocoq_serve --dump-spec F1:0` or a hand-written model:

    socket_client.py 7077 --problem model.json --id mine --seed 11

Extra job fields ride along as KEY=VALUE pairs (numbers and booleans
are detected, everything else stays a string):

    socket_client.py 7077 --problem model.json iters=20 solver=penalty

Exit status: 0 on a clean close, 2 on usage/connection errors.
"""

import json
import socket
import sys


def parse_value(raw: str):
    """KEY=VALUE values: JSON scalars when they parse, strings otherwise."""
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def usage_error(message: str):
    """Usage errors exit 2, like every other path (see module doc)."""
    print(message, file=sys.stderr)
    raise SystemExit(2)


def build_inline_request(args: list) -> bytes:
    """Consume --problem FILE / --id ID / --seed N / KEY=VALUE args."""
    job = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("--problem", "--id", "--seed"):
            if i + 1 >= len(args):
                usage_error(f"missing value for {arg}")
            value = args[i + 1]
            i += 2
            if arg == "--problem":
                with open(value, encoding="utf-8") as f:
                    job["problem"] = json.load(f)
            elif arg == "--id":
                job["id"] = value
            else:
                job["seed"] = parse_value(value)
        elif "=" in arg:
            key, _, raw = arg.partition("=")
            job[key] = parse_value(raw)
            i += 1
        else:
            usage_error(f"unrecognized argument: {arg!r}")
    if "problem" not in job:
        usage_error("--problem FILE is required in inline mode")
    return (json.dumps(job) + "\n").encode()


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        port = int(argv[1])
    except ValueError:
        print(f"not a port number: {argv[1]!r}", file=sys.stderr)
        return 2
    if len(argv) > 2:
        requests = build_inline_request(argv[2:])
    else:
        requests = sys.stdin.buffer.read()
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        print(f"cannot connect to 127.0.0.1:{port}: {e}", file=sys.stderr)
        return 2
    with conn:
        conn.sendall(requests)
        conn.shutdown(socket.SHUT_WR)
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            sys.stdout.buffer.write(chunk)
    sys.stdout.buffer.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
