#!/usr/bin/env python3
"""Minimal JSONL client for chocoq_serve --listen (stdlib only).

Connects to 127.0.0.1:PORT, streams requests to the server, half-closes
the write side (EOF tells the server no more requests are coming), and
prints every result line to stdout until the server closes the
connection. Used by the CI socket smoke test and handy for operators
without nc:

    printf '{"scale":"F1"}\n' | socket_client.py 7077

Requests come from stdin by default. With --problem FILE the client
instead builds one inline-problem request (see docs/protocol.md) from
the problem-spec JSON in FILE — e.g. the output of
`chocoq_serve --dump-spec F1:0` or a hand-written model:

    socket_client.py 7077 --problem model.json --id mine --seed 11

Extra job fields ride along as KEY=VALUE pairs (numbers and booleans
are detected, everything else stays a string):

    socket_client.py 7077 --problem model.json iters=20 solver=penalty

With --max-retries N the client retries transient failures — a
"rejected" or "expired" response, a connection reset, or a connection
that closed before answering — up to N times per request, on a fresh
connection each round, with exponential backoff plus jitter between
rounds. Retry mode needs to correlate responses to requests, so every
request line must be a JSON object; requests without an "id" get a
synthetic "retry-<line>" id (echoed in their responses). Control
requests ({"type":"cancel"} / {"type":"health"} / {"type":"stats"})
are not retryable and are rejected in retry mode. Without
--max-retries (the default) the client is a byte-faithful pipe,
exactly as before.

Observability flags (docs/observability.md):

    socket_client.py 7077 --stats

sends one {"type":"stats"} probe and pretty-prints the server's
cumulative metrics snapshot (counters, gauges, stage histograms,
cache/registry/scheduler/server sections).

    printf '{"scale":"F1","seed":7}\n' | socket_client.py 7077 --trace

sets "trace":true on every job request (requests must be JSON
objects; control requests pass through untouched) and, after each
result's JSON line, renders its span timeline with the same formatter
as trace_view.py.

Exit status: 0 on a clean close (retry mode: every request resolved),
2 on usage/connection errors or when retries are exhausted.
"""

import json
import random
import socket
import sys
import time

# trace_view lives next to this script; --trace borrows its timeline
# formatter so client-side and offline rendering stay identical. The
# import is optional so every other mode works with this file alone.
try:
    import trace_view
except ImportError:  # pragma: no cover - only when copied standalone
    trace_view = None

# Transient response statuses worth resubmitting: "rejected" is
# backpressure (the server asked us to come back later), "expired" is a
# deadline that re-arms from zero on resubmission.
RETRYABLE_STATUSES = ("rejected", "expired")

# Backoff schedule: BASE * 2^round seconds, capped, plus up to 100%
# jitter so synchronized clients don't re-dogpile a loaded server.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


def parse_value(raw: str):
    """KEY=VALUE values: JSON scalars when they parse, strings otherwise."""
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def usage_error(message: str):
    """Usage errors exit 2, like every other path (see module doc)."""
    print(message, file=sys.stderr)
    raise SystemExit(2)


def build_inline_request(args: list) -> dict:
    """Consume --problem FILE / --id ID / --seed N / KEY=VALUE args."""
    job = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("--problem", "--id", "--seed"):
            if i + 1 >= len(args):
                usage_error(f"missing value for {arg}")
            value = args[i + 1]
            i += 2
            if arg == "--problem":
                with open(value, encoding="utf-8") as f:
                    job["problem"] = json.load(f)
            elif arg == "--id":
                job["id"] = value
            else:
                job["seed"] = parse_value(value)
        elif "=" in arg:
            key, _, raw = arg.partition("=")
            job[key] = parse_value(raw)
            i += 1
        else:
            usage_error(f"unrecognized argument: {arg!r}")
    if "problem" not in job:
        usage_error("--problem FILE is required in inline mode")
    return job


def emit_result(resp: dict, show_trace: bool):
    """One response: compact JSON line, then its timeline if asked."""
    sys.stdout.write(json.dumps(resp, separators=(",", ":")) + "\n")
    if show_trace and isinstance(resp.get("trace"), dict):
        label = str(resp.get("id", "") or "")
        for line in trace_view.format_trace(resp["trace"], label=label):
            sys.stdout.write(line + "\n")


def run_stats(port: int) -> int:
    """Send one {"type":"stats"} probe, pretty-print the snapshot."""
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        print(f"cannot connect to 127.0.0.1:{port}: {e}", file=sys.stderr)
        return 2
    buf = b""
    with conn:
        conn.sendall(b'{"type":"stats"}\n')
        conn.shutdown(socket.SHUT_WR)
        while b"\n" not in buf:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
    line, _, _ = buf.partition(b"\n")
    if not line.strip():
        print("socket_client: no stats response", file=sys.stderr)
        return 2
    try:
        snapshot = json.loads(line)
    except ValueError:
        sys.stdout.buffer.write(line + b"\n")
        return 0
    print(json.dumps(snapshot, indent=2))
    return 0


def stream_traced(port: int, requests: list) -> int:
    """--trace without retries: one connection, parsed result lines so
    each trace renders as it arrives."""
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        print(f"cannot connect to 127.0.0.1:{port}: {e}", file=sys.stderr)
        return 2
    buf = b""
    with conn:
        payload = b"".join(
            (json.dumps(obj) + "\n").encode() for obj in requests
        )
        conn.sendall(payload)
        conn.shutdown(socket.SHUT_WR)
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf:
                line, _, buf = buf.partition(b"\n")
                if not line.strip():
                    continue
                try:
                    resp = json.loads(line)
                except ValueError:
                    sys.stdout.buffer.write(line + b"\n")
                    continue
                if isinstance(resp, dict):
                    emit_result(resp, show_trace=True)
                else:
                    sys.stdout.write(json.dumps(resp) + "\n")
    sys.stdout.flush()
    return 0


def stream_once(port: int, payload: bytes) -> int:
    """Pre-retry behavior: one connection, bytes in, bytes out."""
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        print(f"cannot connect to 127.0.0.1:{port}: {e}", file=sys.stderr)
        return 2
    with conn:
        conn.sendall(payload)
        conn.shutdown(socket.SHUT_WR)
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            sys.stdout.buffer.write(chunk)
    sys.stdout.buffer.flush()
    return 0


def attempt_round(port: int, batch: list):
    """One connection carrying every still-unresolved request.

    Returns (responses_by_id, error_str_or_None). A connection-level
    error is not fatal to the round: responses received before the
    failure still count, and whatever went unanswered is retried.
    """
    responses = {}
    error = None
    try:
        conn = socket.create_connection(("127.0.0.1", port), timeout=600)
    except OSError as e:
        return responses, f"connect: {e}"
    buf = b""
    try:
        with conn:
            payload = b"".join(
                (json.dumps(obj) + "\n").encode() for obj in batch
            )
            conn.sendall(payload)
            conn.shutdown(socket.SHUT_WR)
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, _, buf = buf.partition(b"\n")
                    if not line.strip():
                        continue
                    try:
                        resp = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(resp, dict):
                        responses.setdefault(resp.get("id"), []).append(resp)
    except OSError as e:
        error = f"connection failed mid-stream: {e}"
    return responses, error


def run_with_retries(
    port: int, requests: list, max_retries: int, show_trace: bool = False
) -> int:
    """Resolve every request, resubmitting transient failures.

    Responses print (one JSON line each) as their request resolves —
    either a terminal status, or the last transient answer once retries
    run out.
    """
    items = []
    for n, obj in enumerate(requests):
        if not isinstance(obj, dict):
            usage_error(
                f"--max-retries requires JSON object requests; "
                f"line {n + 1} is not an object"
            )
        if obj.get("type") in ("cancel", "health", "stats"):
            usage_error(
                "--max-retries cannot carry control requests "
                "(cancel/health/stats); send them without retries"
            )
        if not obj.get("id"):
            obj = dict(obj, id=f"retry-{n + 1}")
        items.append(obj)

    unresolved = list(range(len(items)))
    last_seen = {}  # index -> last (retryable) response observed
    for round_no in range(max_retries + 1):
        batch = [items[i] for i in unresolved]
        responses, error = attempt_round(port, batch)
        if error is not None:
            print(f"socket_client: {error}", file=sys.stderr)

        still = []
        for i in unresolved:
            matches = responses.get(items[i]["id"])
            resp = matches.pop(0) if matches else None
            if resp is None:
                # Connection died before this request was answered.
                still.append(i)
            elif resp.get("status") in RETRYABLE_STATUSES:
                last_seen[i] = resp
                still.append(i)
            else:
                # Compact separators match the server's wire format, so
                # downstream greps/diffs treat retried and direct output
                # the same way.
                emit_result(resp, show_trace)
        unresolved = still
        sys.stdout.flush()
        if not unresolved:
            return 0
        if round_no < max_retries:
            delay = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2**round_no))
            delay += random.uniform(0.0, delay)
            print(
                f"socket_client: {len(unresolved)} request(s) unresolved, "
                f"retry {round_no + 1}/{max_retries} in {delay:.2f}s",
                file=sys.stderr,
            )
            time.sleep(delay)

    # Retries exhausted: surface the last transient answer (if any) so
    # the caller sees *why* each request never resolved.
    for i in unresolved:
        if i in last_seen:
            emit_result(last_seen[i], show_trace)
    sys.stdout.flush()
    print(
        f"socket_client: gave up on {len(unresolved)} request(s) after "
        f"{max_retries} retries",
        file=sys.stderr,
    )
    return 2


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        port = int(argv[1])
    except ValueError:
        print(f"not a port number: {argv[1]!r}", file=sys.stderr)
        return 2

    # Mode flags apply in both request modes, so lift them out before
    # the inline-request builder sees the remaining args.
    args = list(argv[2:])
    max_retries = 0
    want_stats = False
    want_trace = False
    i = 0
    while i < len(args):
        if args[i] == "--max-retries":
            if i + 1 >= len(args):
                usage_error("missing value for --max-retries")
            try:
                max_retries = int(args[i + 1])
            except ValueError:
                max_retries = -1
            if max_retries < 0:
                usage_error(
                    f"--max-retries expects a non-negative integer, "
                    f"got {args[i + 1]!r}"
                )
            del args[i : i + 2]
        elif args[i] == "--stats":
            want_stats = True
            del args[i]
        elif args[i] == "--trace":
            want_trace = True
            del args[i]
        else:
            i += 1

    if want_stats:
        if args or want_trace or max_retries:
            usage_error("--stats takes no other arguments")
        return run_stats(port)
    if want_trace and trace_view is None:
        usage_error("--trace needs trace_view.py next to this script")

    if args:
        requests = [build_inline_request(args)]
        payload = (json.dumps(requests[0]) + "\n").encode()
    else:
        payload = sys.stdin.buffer.read()
        requests = None

    if max_retries == 0 and not want_trace:
        return stream_once(port, payload)

    if requests is None:
        mode = "--max-retries" if max_retries else "--trace"
        requests = []
        for n, line in enumerate(payload.splitlines()):
            if not line.strip():
                continue
            try:
                requests.append(json.loads(line))
            except ValueError:
                usage_error(
                    f"{mode} requires parseable JSON requests; "
                    f"line {n + 1} is not JSON"
                )

    if want_trace:
        # Job requests gain "trace":true; control requests (objects
        # with a "type") and non-object lines pass through untouched.
        requests = [
            dict(obj, trace=True)
            if isinstance(obj, dict) and "type" not in obj
            else obj
            for obj in requests
        ]

    if max_retries == 0:
        return stream_traced(port, requests)
    return run_with_retries(port, requests, max_retries, show_trace=want_trace)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
