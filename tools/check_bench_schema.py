#!/usr/bin/env python3
"""Schema check for the benchmark JSON outputs.

Validates BENCH_service.json and BENCH_load.json against the key sets
documented in docs/benchmarks.md, so a rename (like the old
conn_setup_ms_avg -> accept_ms_avg / first_byte_ms_avg split) can never
silently ship half-applied: the moment a producer and this contract
disagree, CI fails. BENCH_kernels.json (google-benchmark format) is
checked for the SoA batching probes: at least one BM_EvolveBatchSoA*
entry must carry the per-amplitude counters.

Usage:
    check_bench_schema.py [--service BENCH_service.json]
                          [--load BENCH_load.json]
                          [--kernels BENCH_kernels.json]

BENCH_kernels.json additionally carries the roofline contract: a
"machine" block (hardware fingerprint + calibrated peaks from
bench_micro's post-run annotation) and, on every kernel entry that
reports ns_per_amp, the full roofline key set. Committed perf baselines
under bench/baselines/ are the same document shape and are validated
with the same checks.

Usage:
    check_bench_schema.py [--service BENCH_service.json]
                          [--load BENCH_load.json]
                          [--kernels BENCH_kernels.json]
                          [--baselines-dir bench/baselines]

Files that are not given and do not exist in the working directory are
skipped with a note; a file that exists but does not match the contract
is an error. Exit 0 only if everything present validates.
"""

import argparse
import glob
import json
import os
import sys

FORBIDDEN_KEYS = {
    # Replaced by the accept/first-byte split; must never reappear.
    "conn_setup_ms_avg",
    "conn_setup_ms",
}

SERVICE_TOP = {
    "bench",
    "mode",
    "jobs",
    "hardware_concurrency",
    "deterministic_across_worker_counts",
    "speedup_max_vs_min_workers",
    "batch_widths",
    "deterministic_across_batch_widths",
    "runs",
    "socket",
    "inline_spec",
    "observability",
}

# Counters every SoA batching probe must attach (see bench_micro.cpp).
KERNELS_SOA_COUNTERS = {
    "ns_per_amp",
    "bytes_per_amp",
    "flops_per_amp",
    "lanes_per_touch",
}

# The roofline key set every kernel entry with ns_per_amp must carry
# after bench_micro's post-run annotation.
KERNELS_ROOFLINE = {
    "ns_per_amp",
    "bytes_per_amp",
    "flops_per_amp",
    "arithmetic_intensity",
    "roofline_bound",
    "pct_of_ceiling",
}

# The machine block written by bench_micro --calibrate / the post-run
# annotation (obs::machineJson).
MACHINE_KEYS = {
    "fingerprint",
    "cpu_model",
    "logical_cores",
    "caches",
    "triad_gbps",
    "peak_scalar_gflops",
    "peak_simd_gflops",
    "peak_gflops",
    "ridge_ai_flops_per_byte",
}

SERVICE_SOCKET = {
    "workers",
    "connections",
    "accept_ms_avg",
    "idle_before_first_request_ms_avg",
    "first_byte_ms_avg",
    "wall_seconds",
    "jobs_per_sec",
    "latency_p50_ms",
    "latency_p99_ms",
    "matches_in_process",
}

LOAD_TOP = {
    "bench",
    "open_loop",
    "seed",
    "duration_s_per_rung",
    "workers",
    "event_loop",
    "external_server",
    "hardware_concurrency",
    "stages",
}

LOAD_STAGE = {
    "connections",
    "max_sustainable_jobs_per_sec",
    "offered_jobs_per_sec",
    "achieved_jobs_per_sec",
    "latency_p50_ms",
    "latency_p99_ms",
    "latency_p999_ms",
    "jobs_sent",
    "responses",
    "error_lines",
    "malformed_lines",
    "out_of_order",
    "reconciled",
    "server",
}

LOAD_STAGE_SERVER = {
    "accept_ms_avg",
    "idle_before_first_request_ms_avg",
    "first_byte_ms_avg",
    "stage_queue_ms_p50",
    "stage_solve_ms_p50",
    "partial_writes",
}


def fail(errors, where, message):
    errors.append(f"{where}: {message}")


def check_keys(errors, where, obj, required):
    if not isinstance(obj, dict):
        fail(errors, where, f"expected an object, got {type(obj).__name__}")
        return
    missing = sorted(required - obj.keys())
    if missing:
        fail(errors, where, f"missing keys: {', '.join(missing)}")
    banned = sorted(FORBIDDEN_KEYS & obj.keys())
    if banned:
        fail(errors, where, f"forbidden legacy keys present: {', '.join(banned)}")


def check_service(path, errors):
    with open(path) as fh:
        doc = json.load(fh)
    check_keys(errors, f"{path}", doc, SERVICE_TOP)
    if isinstance(doc, dict):
        if doc.get("bench") != "service":
            fail(errors, path, f"bench != 'service' (got {doc.get('bench')!r})")
        check_keys(errors, f"{path}:socket", doc.get("socket"), SERVICE_SOCKET)
        runs = doc.get("runs")
        if not isinstance(runs, list) or not runs:
            fail(errors, path, "runs must be a non-empty array")
        widths = doc.get("batch_widths")
        if not isinstance(widths, list) or not widths:
            fail(errors, path, "batch_widths must be a non-empty array")


def check_kernels(path, errors, require_soa=True):
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        fail(errors, path,
             "expected google-benchmark JSON with a 'benchmarks' array")
        return
    check_keys(errors, f"{path}:machine", doc.get("machine"), MACHINE_KEYS)
    rooflined = 0
    for bench in doc["benchmarks"]:
        if not isinstance(bench, dict) or "ns_per_amp" not in bench:
            continue
        rooflined += 1
        where = f"{path}:{bench.get('name')}"
        missing = sorted(KERNELS_ROOFLINE - bench.keys())
        if missing:
            fail(errors, where, f"missing roofline keys: {', '.join(missing)}")
        bound = bench.get("roofline_bound")
        if bound not in (None, "memory", "compute"):
            fail(errors, where,
                 f"roofline_bound must be 'memory' or 'compute', got {bound!r}")
    if not rooflined:
        fail(errors, path, "no kernel entries with ns_per_amp present")
    soa = [b for b in doc["benchmarks"]
           if isinstance(b, dict)
           and str(b.get("name", "")).startswith("BM_EvolveBatchSoA")]
    if not soa:
        if require_soa:
            fail(errors, path, "no BM_EvolveBatchSoA* entries present")
        return
    for bench in soa:
        where = f"{path}:{bench.get('name')}"
        missing = sorted(KERNELS_SOA_COUNTERS - bench.keys())
        if missing:
            fail(errors, where, f"missing counters: {', '.join(missing)}")


def check_baseline(path, errors):
    # A committed baseline is an annotated BENCH_kernels.json captured on
    # one machine; it may be a filtered run, so SoA entries are optional,
    # but its filename must match the embedded fingerprint so
    # check_perf_regression.py looks it up correctly.
    check_kernels(path, errors, require_soa=False)
    try:
        with open(path) as fh:
            doc = json.load(fh)
        fingerprint = doc.get("machine", {}).get("fingerprint")
        stem = os.path.splitext(os.path.basename(path))[0]
        if fingerprint and stem != fingerprint:
            fail(errors, path,
                 f"filename stem {stem!r} != machine fingerprint "
                 f"{fingerprint!r}")
    except (json.JSONDecodeError, OSError):
        pass  # already reported by check_kernels


def check_load(path, errors):
    with open(path) as fh:
        doc = json.load(fh)
    check_keys(errors, f"{path}", doc, LOAD_TOP)
    if isinstance(doc, dict):
        if doc.get("bench") != "load":
            fail(errors, path, f"bench != 'load' (got {doc.get('bench')!r})")
        if doc.get("open_loop") is not True:
            fail(errors, path, "open_loop must be true (the harness is open-loop by construction)")
        stages = doc.get("stages")
        if not isinstance(stages, list) or not stages:
            fail(errors, path, "stages must be a non-empty array")
            return
        for i, stage in enumerate(stages):
            where = f"{path}:stages[{i}]"
            check_keys(errors, where, stage, LOAD_STAGE)
            if isinstance(stage, dict):
                check_keys(errors, f"{where}.server", stage.get("server"),
                           LOAD_STAGE_SERVER)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--service", default="BENCH_service.json")
    parser.add_argument("--load", default="BENCH_load.json")
    parser.add_argument("--kernels", default="BENCH_kernels.json")
    parser.add_argument("--baselines-dir", default="bench/baselines")
    args = parser.parse_args()

    errors = []
    checked = 0
    targets = [(args.service, check_service),
               (args.load, check_load),
               (args.kernels, check_kernels)]
    if os.path.isdir(args.baselines_dir):
        for path in sorted(glob.glob(
                os.path.join(args.baselines_dir, "*.json"))):
            targets.append((path, check_baseline))
    for path, checker in targets:
        if not os.path.exists(path):
            print(f"check_bench_schema: {path} not present, skipped")
            continue
        try:
            checker(path, errors)
            checked += 1
        except (json.JSONDecodeError, OSError) as exc:
            fail(errors, path, f"unreadable: {exc}")

    if errors:
        for err in errors:
            print(f"check_bench_schema: FAIL {err}", file=sys.stderr)
        return 1
    print(f"check_bench_schema: ok ({checked} file(s) validated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
