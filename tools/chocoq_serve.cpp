/**
 * @file
 * chocoq_serve: JSONL solve server.
 *
 * Reads one JSON job request per line from a file or stdin, solves them
 * on a concurrent worker pool with a shared compilation cache, and
 * streams one JSON result per line to stdout as jobs complete
 * (completion order; every line echoes the request id). A summary with
 * throughput and cache statistics goes to stderr.
 *
 * Request keys (all optional except scale): id, solver (choco-q |
 * penalty | cyclic | hea), scale (F1..K4), case, seed, shots, device
 * (fez | osaka | sherbrooke), layers, iters, keep_starts, deadline_ms.
 *
 *   $ printf '%s\n' \
 *       '{"id":"a","scale":"F1","case":0,"seed":11}' \
 *       '{"id":"b","scale":"K1","case":1,"solver":"penalty"}' \
 *     | chocoq_serve --workers 4
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "service/service.hpp"

namespace
{

#ifndef CHOCOQ_VERSION_STRING
#define CHOCOQ_VERSION_STRING "unknown"
#endif

void
usage(const char *argv0)
{
    std::cout
        << "usage: " << argv0 << " [options]\n"
        << "  --input FILE   read JSONL job requests from FILE (default: "
           "stdin)\n"
        << "  --workers N    concurrent solve workers (default: 1)\n"
        << "  --iters N      default optimizer iteration budget for jobs "
           "that\n"
        << "                 don't set \"iters\" (default: solver "
           "defaults)\n"
        << "  --no-cache     disable the compilation cache\n"
        << "  --cache-mb N   compilation-cache byte budget in MiB "
           "(default: 256,\n"
        << "                 0 = unbounded); coldest artifacts are "
           "evicted first\n"
        << "  --quiet        suppress the stderr summary\n"
        << "  --help, -h     show this help and exit\n"
        << "  --version      print the version and exit\n"
        << "\nUnknown options are rejected with exit status 2.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path;
    chocoq::service::ServiceOptions options;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--input") {
            input_path = next();
        } else if (arg == "--workers") {
            options.workers = std::atoi(next());
        } else if (arg == "--iters") {
            options.defaultIterations = std::atoi(next());
        } else if (arg == "--no-cache") {
            options.useCache = false;
        } else if (arg == "--cache-mb") {
            // Untrusted CLI input: a typo or negative value must not
            // silently wrap into a near-unbounded budget.
            const char *raw = next();
            char *end = nullptr;
            const long long mb = std::strtoll(raw, &end, 10);
            if (end == raw || *end != '\0' || mb < 0
                || mb > (1ll << 40)) {
                std::cerr << "--cache-mb expects a non-negative integer "
                             "(MiB), got '"
                          << raw << "'\n";
                return 2;
            }
            options.cacheMaxBytes = static_cast<std::size_t>(mb) << 20;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            std::cout << "chocoq_serve " << CHOCOQ_VERSION_STRING << "\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }

    std::ifstream file;
    if (!input_path.empty()) {
        file.open(input_path);
        if (!file) {
            std::cerr << "cannot open " << input_path << "\n";
            return 2;
        }
    }
    std::istream &in = input_path.empty() ? std::cin : file;

    chocoq::service::SolveService service(options);
    std::mutex out_mu;
    long submitted = 0;
    long failed = 0;
    chocoq::Timer wall;

    std::string line;
    long lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Skip blank lines and # comments so fixtures can be annotated.
        std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        chocoq::service::SolveJob job;
        try {
            job = chocoq::service::jobFromJsonLine(line);
        } catch (const std::exception &e) {
            // A malformed request fails that request, not the stream.
            chocoq::service::SolveResult bad;
            bad.id = "line-" + std::to_string(lineno);
            bad.status = "error";
            bad.error = e.what();
            std::lock_guard<std::mutex> lock(out_mu);
            std::cout << chocoq::service::resultToJson(bad).dump() << "\n";
            ++failed;
            continue;
        }
        if (job.id.empty())
            job.id = "job-" + std::to_string(lineno);
        ++submitted;
        service.submit(std::move(job),
                       [&](const chocoq::service::SolveResult &r) {
                           std::lock_guard<std::mutex> lock(out_mu);
                           std::cout
                               << chocoq::service::resultToJson(r).dump()
                               << "\n";
                           std::cout.flush();
                           if (r.status != "ok")
                               ++failed;
                       });
    }
    service.drain();

    if (!quiet) {
        const auto cache = service.cacheStats();
        const double seconds = wall.seconds();
        std::cerr << "chocoq_serve: " << submitted << " jobs on "
                  << service.workers() << " workers in " << seconds
                  << " s ("
                  << (seconds > 0 ? static_cast<double>(submitted) / seconds
                                  : 0.0)
                  << " jobs/s), cache " << cache.hits << " hits / "
                  << cache.misses << " misses / " << cache.evictions
                  << " evictions (" << cache.bytes << " bytes held), "
                  << failed << " failed\n";
    }
    return failed == 0 ? 0 : 1;
}
