/**
 * @file
 * chocoq_serve: JSONL solve server.
 *
 * Two front-ends over the same concurrent solve service:
 *
 * - Batch (default): read one JSON job request per line from a file or
 *   stdin, solve on the worker pool, stream one JSON result per line to
 *   stdout as jobs complete, exit when the stream is drained.
 * - Long-lived (--listen PORT): accept TCP connections on loopback and
 *   speak the same JSONL protocol per connection, with backpressure,
 *   idle timeouts, and graceful drain on SIGINT/SIGTERM (in-flight jobs
 *   finish, results flush, then the process exits 0).
 *
 * The wire contract — request/response fields, error-line shape,
 * overload responses, connection lifecycle — lives in docs/protocol.md;
 * both modes are cross-checked against each other in CI.
 *
 *   $ printf '%s\n' \
 *       '{"id":"a","scale":"F1","case":0,"seed":11}' \
 *       '{"id":"b","scale":"K1","case":1,"solver":"penalty"}' \
 *     | chocoq_serve --workers 4
 *
 *   $ chocoq_serve --listen 7077 --workers 4 &
 *   $ printf '{"id":"a","scale":"F1","seed":11}\n' | nc 127.0.0.1 7077
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "problems/suite.hpp"
#include "service/fault.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "spec/spec.hpp"

namespace
{

#ifndef CHOCOQ_VERSION_STRING
#define CHOCOQ_VERSION_STRING "unknown"
#endif

void
usage(const char *argv0)
{
    std::cout
        << "usage: " << argv0 << " [options]\n"
        << "  --input FILE   read JSONL job requests from FILE (default: "
           "stdin)\n"
        << "  --workers N    concurrent solve workers (default: 1)\n"
        << "  --iters N      default optimizer iteration budget for jobs "
           "that\n"
        << "                 don't set \"iters\" (default: solver "
           "defaults)\n"
        << "  --batch-width N  SoA lanes per batched evaluation sweep "
           "for jobs\n"
        << "                 that don't set \"batch_width\" (default: 0 "
           "= auto;\n"
        << "                 results are bit-identical across widths)\n"
        << "  --no-cache     disable the compilation cache\n"
        << "  --cache-mb N   compilation-cache byte budget in MiB "
           "(default: 256,\n"
        << "                 0 = unbounded); coldest artifacts are "
           "evicted first\n"
        << "  --max-line-bytes N  longest accepted request line "
           "(default: 1 MiB;\n"
        << "                 0 = unbounded in batch mode, 1 MiB on the "
           "socket)\n"
        << "  --max-qubits N      most variables an inline \"problem\" "
           "spec may\n"
        << "                 declare (default: 28, hard ceiling 62)\n"
        << "  --max-spec-bytes N  largest serialized inline problem "
           "object\n"
        << "                 (default: 256 KiB); over-cap specs fail "
           "per-line\n"
        << "  --registry-mb N     inline-problem registry byte budget in "
           "MiB\n"
        << "                 (default: 64, 0 = unbounded); coldest "
           "problems are\n"
        << "                 evicted first (their problem_ref then "
           "misses)\n"
        << "  --dump-spec SCALE:CASE  print the inline-problem spec JSON "
           "of a\n"
        << "                 registry case (e.g. F1:0) and exit\n"
        << "  --quiet        suppress the stderr summary\n"
        << "  --help, -h     show this help and exit\n"
        << "  --version      print the version and exit\n"
        << "\nLong-lived server mode (see docs/protocol.md):\n"
        << "  --listen PORT       accept JSONL connections on "
           "127.0.0.1:PORT\n"
        << "                      (0 picks an ephemeral port); SIGINT/"
           "SIGTERM\n"
        << "                      drain gracefully and exit 0\n"
        << "  --max-inflight N    reject requests over N jobs in flight "
           "with a\n"
        << "                      status \"rejected\" line (default: 256, "
           "0 = off)\n"
        << "  --idle-timeout-ms N close a connection idle for N ms with "
           "no job\n"
        << "                      in flight (default: 0 = never)\n"
        << "  --max-conn-requests N  per-connection request limit "
           "(default: 0 = off)\n"
        << "  --max-conns N       concurrently open connections; over "
           "the bound a\n"
        << "                      connection gets one rejected line and "
           "closes\n"
        << "                      (default: 64 threaded, 1024 with "
           "--event-loop;\n"
        << "                      0 = unbounded). --max-connections is "
           "an alias\n"
        << "  --event-loop        poll(2) event-multiplexed front-end "
           "(sharded\n"
        << "                      connection tables, non-blocking I/O) "
           "instead of\n"
        << "                      one reader thread per connection; use "
           "for\n"
        << "                      hundreds+ of concurrent connections "
           "(see\n"
        << "                      docs/service.md#event-loop-front-end)\n"
        << "  --event-shards N    event-loop poll shard threads "
           "(default: 2)\n"
        << "  --queue-wait MS     hold an over-capacity request up to MS "
           "ms (or\n"
        << "                      until its deadline_ms would expire in "
           "queue)\n"
        << "                      before rejecting (default: 0 = reject "
           "at once)\n"
        << "  --port-file FILE    write the bound port to FILE once "
           "listening\n"
        << "\nRobustness (both modes; see docs/service.md):\n"
        << "  --stall-threshold-ms N  flag a worker busy on one job for "
           "over N ms\n"
        << "                      as stalled (watchdog, surfaced by the "
           "health\n"
        << "                      probe and summary; default: 30000, 0 = "
           "off)\n"
        << "  --fault-spec SPEC   deterministic fault injection: comma-"
           "separated\n"
        << "                      site=prob[:ms] clauses plus seed=N; "
           "sites are\n"
        << "                      stall, alloc_fail, conn_reset, "
           "read_delay\n"
        << "                      (e.g. 'stall=0.5:400,conn_reset=0.1,"
           "seed=9');\n"
        << "                      unset means no injection anywhere\n"
        << "\nObservability (both modes; see docs/observability.md):\n"
        << "  --metrics-file FILE     append one JSON metrics snapshot "
           "per line\n"
        << "                      (JSONL, same body as the {\"type\":"
           "\"stats\"}\n"
        << "                      probe plus \"unix_ms\"); one snapshot "
           "per\n"
        << "                      interval and a final one at shutdown\n"
        << "  --metrics-interval-ms N snapshot period for --metrics-file "
           "in ms\n"
        << "                      (default: 1000)\n"
        << "\nUnknown options are rejected with exit status 2.\n";
}

/** Signal flag: handlers only set it; the main loop does the work. */
volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Parse a bounded non-negative integer CLI value or exit 2. */
long long
parsedNonNegative(const char *raw, const char *flag, long long hi)
{
    char *end = nullptr;
    const long long v = std::strtoll(raw, &end, 10);
    if (end == raw || *end != '\0' || v < 0 || v > hi) {
        std::cerr << flag << " expects a non-negative integer, got '" << raw
                  << "'\n";
        std::exit(2);
    }
    return v;
}

/**
 * Robustness lines: watchdog/cancellation counters (only when any
 * fired — a clean run stays clean), and injection counts whenever a
 * fault spec was active (even all-zero counts are informative there:
 * they confirm the harness ran and injected nothing).
 */
void
printRobustnessSummary(const chocoq::service::SolveService &service,
                       const chocoq::service::FaultInjector *fault)
{
    const auto health = service.health();
    if (health.stallsFlagged > 0 || health.cancelledJobs > 0
        || health.expiredJobs > 0)
        std::cerr << "chocoq_serve: robustness " << health.stallsFlagged
                  << " stalls flagged / " << health.cancelledJobs
                  << " cancelled / " << health.expiredJobs << " expired\n";
    if (fault) {
        const auto counts = fault->counts();
        std::cerr << "chocoq_serve: fault injection (seed "
                  << fault->spec().seed << ") " << counts.stalls
                  << " stalls / " << counts.allocFails << " alloc fails / "
                  << counts.connResets << " conn resets / "
                  << counts.readDelays << " read delays\n";
    }
}

/** One registry line when inline problems were used at all. */
void
printRegistrySummary(const chocoq::service::SolveService &service)
{
    const auto reg = service.registryStats();
    if (reg.inserted == 0 && reg.refMisses == 0)
        return;
    std::cerr << "chocoq_serve: problem registry " << reg.inserted
              << " registered / " << reg.reused << " reused / "
              << reg.refHits << " ref hits / " << reg.refMisses
              << " ref misses / " << reg.evictions << " evictions ("
              << reg.bytes << " bytes held)\n";
}

void
printSummary(const chocoq::service::SolveService &service, long submitted,
             long failed, double seconds,
             const chocoq::service::FaultInjector *fault)
{
    const auto cache = service.cacheStats();
    std::cerr << "chocoq_serve: " << submitted << " jobs on "
              << service.workers() << " workers in " << seconds << " s ("
              << (seconds > 0 ? static_cast<double>(submitted) / seconds
                              : 0.0)
              << " jobs/s), cache " << cache.hits << " hits / "
              << cache.misses << " misses / " << cache.evictions
              << " evictions (" << cache.bytes << " bytes held), " << failed
              << " failed\n";
    printRegistrySummary(service);
    printRobustnessSummary(service, fault);
}

/**
 * Periodic JSONL metrics snapshots (--metrics-file): one line per
 * interval, same body as the {"type":"stats"} probe plus "unix_ms", and
 * a final line at shutdown so even a short batch run leaves a record.
 * Reading the registry is lock-cheap (registration mutex only), so the
 * writer thread never perturbs the serving path.
 */
class MetricsFileWriter
{
  public:
    MetricsFileWriter(const chocoq::service::SolveService &service,
                      const std::string &path, int interval_ms)
        : service_(service), intervalMs_(interval_ms)
    {
        out_.open(path, std::ios::app);
        if (!out_) {
            std::cerr << "cannot open metrics file " << path << "\n";
            std::exit(2);
        }
        thread_ = std::thread([this] { loop(); });
    }

    ~MetricsFileWriter() { stop(); }

    /** Write the final snapshot and join; idempotent. */
    void stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_)
                return;
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

  private:
    void writeSnapshot()
    {
        chocoq::service::Json line =
            chocoq::service::statsToJson(service_);
        line.set("unix_ms",
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now()
                             .time_since_epoch())
                         .count()));
        out_ << line.dump() << "\n";
        out_.flush();
    }

    void loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
            cv_.wait_for(lock, std::chrono::milliseconds(intervalMs_),
                         [this] { return stop_; });
            if (stop_)
                break;
            lock.unlock();
            writeSnapshot();
            lock.lock();
        }
        writeSnapshot(); // shutdown snapshot: the run's final counts
    }

    const chocoq::service::SolveService &service_;
    const int intervalMs_;
    std::ofstream out_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path;
    std::string port_file;
    std::string metrics_file;
    int metrics_interval_ms = 1000;
    chocoq::service::ServiceOptions options;
    chocoq::service::ServerOptions server_options;
    bool quiet = false;
    bool listen = false;
    bool max_conns_set = false;
    chocoq::service::StreamLimits stream_limits;
    std::string fault_spec_text;
    // Server-only flags are meaningless in batch mode; accepting them
    // silently would let an operator believe a bound is in effect.
    std::string server_only_flag;

    // The serve tool enables the watchdog by default (the library
    // default is off): a worker stuck for half a minute on one job is
    // operationally interesting in either front-end mode.
    options.stallThresholdMs = 30000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--input") {
            input_path = next();
        } else if (arg == "--workers") {
            options.workers = std::atoi(next());
        } else if (arg == "--iters") {
            options.defaultIterations = std::atoi(next());
        } else if (arg == "--batch-width") {
            options.defaultBatchWidth = static_cast<int>(
                parsedNonNegative(next(), "--batch-width", 1 << 12));
        } else if (arg == "--no-cache") {
            options.useCache = false;
        } else if (arg == "--cache-mb") {
            // Untrusted CLI input: a typo or negative value must not
            // silently wrap into a near-unbounded budget.
            const long long mb =
                parsedNonNegative(next(), "--cache-mb", 1ll << 40);
            options.cacheMaxBytes = static_cast<std::size_t>(mb) << 20;
        } else if (arg == "--listen") {
            listen = true;
            server_options.port = static_cast<int>(
                parsedNonNegative(next(), "--listen", 65535));
        } else if (arg == "--max-inflight") {
            server_only_flag = arg;
            server_options.maxInflight = static_cast<int>(
                parsedNonNegative(next(), "--max-inflight", 1 << 30));
        } else if (arg == "--idle-timeout-ms") {
            server_only_flag = arg;
            server_options.idleTimeoutMs = static_cast<int>(
                parsedNonNegative(next(), "--idle-timeout-ms", 1 << 30));
        } else if (arg == "--max-conn-requests") {
            server_only_flag = arg;
            server_options.maxRequestsPerConn = static_cast<int>(
                parsedNonNegative(next(), "--max-conn-requests", 1 << 30));
        } else if (arg == "--max-conns" || arg == "--max-connections") {
            server_only_flag = arg;
            max_conns_set = true;
            server_options.maxConnections = static_cast<int>(
                parsedNonNegative(next(), arg.c_str(), 1 << 30));
        } else if (arg == "--event-loop") {
            server_only_flag = arg;
            server_options.eventLoop = true;
        } else if (arg == "--event-shards") {
            server_only_flag = arg;
            const int shards = static_cast<int>(
                parsedNonNegative(next(), "--event-shards", 1 << 10));
            if (shards < 1) {
                std::cerr << "--event-shards expects a positive integer\n";
                return 2;
            }
            server_options.eventLoopShards = shards;
        } else if (arg == "--max-line-bytes") {
            // Applies to both modes (0 = unbounded batch; the socket
            // path clamps 0 to its 1 MiB default).
            const long long bytes =
                parsedNonNegative(next(), "--max-line-bytes", 1ll << 40);
            stream_limits.maxLineBytes = static_cast<std::size_t>(bytes);
            server_options.maxLineBytes = static_cast<std::size_t>(bytes);
        } else if (arg == "--max-qubits") {
            // Both modes: the spec guards are part of the protocol, not
            // a socket-only defense. 0 would reject every inline
            // problem with an impossible [1, 0] range — refuse it here.
            const int qubits = static_cast<int>(
                parsedNonNegative(next(), "--max-qubits", 62));
            if (qubits < 1) {
                std::cerr << "--max-qubits expects an integer in "
                             "[1, 62]\n";
                return 2;
            }
            stream_limits.spec.maxQubits = qubits;
            server_options.specLimits.maxQubits = qubits;
        } else if (arg == "--max-spec-bytes") {
            const long long bytes =
                parsedNonNegative(next(), "--max-spec-bytes", 1ll << 40);
            stream_limits.spec.maxSpecBytes =
                static_cast<std::size_t>(bytes);
            server_options.specLimits.maxSpecBytes =
                static_cast<std::size_t>(bytes);
        } else if (arg == "--registry-mb") {
            const long long mb =
                parsedNonNegative(next(), "--registry-mb", 1ll << 40);
            options.registryMaxBytes = static_cast<std::size_t>(mb) << 20;
        } else if (arg == "--stall-threshold-ms") {
            options.stallThresholdMs = static_cast<int>(
                parsedNonNegative(next(), "--stall-threshold-ms", 1 << 30));
        } else if (arg == "--fault-spec") {
            fault_spec_text = next();
        } else if (arg == "--queue-wait") {
            server_only_flag = arg;
            server_options.queueWaitMs = static_cast<int>(
                parsedNonNegative(next(), "--queue-wait", 1 << 30));
        } else if (arg == "--dump-spec") {
            // Operator/CI helper: transcribe a registry case into the
            // inline-problem wire format (see docs/protocol.md).
            const std::string which = next();
            const auto colon = which.find(':');
            const auto scale = chocoq::problems::scaleByName(
                which.substr(0, colon));
            if (!scale) {
                std::cerr << "--dump-spec expects SCALE:CASE (e.g. F1:0), "
                          << "got '" << which << "'\n";
                return 2;
            }
            const unsigned case_index =
                colon == std::string::npos
                    ? 0
                    : static_cast<unsigned>(parsedNonNegative(
                          which.c_str() + colon + 1, "--dump-spec case",
                          1u << 30));
            std::cout << chocoq::spec::problemToSpecJson(
                             chocoq::problems::makeCase(*scale, case_index))
                             .dump()
                      << "\n";
            return 0;
        } else if (arg == "--metrics-file") {
            metrics_file = next();
        } else if (arg == "--metrics-interval-ms") {
            metrics_interval_ms = static_cast<int>(parsedNonNegative(
                next(), "--metrics-interval-ms", 1 << 30));
            if (metrics_interval_ms < 1) {
                std::cerr << "--metrics-interval-ms expects a positive "
                             "integer\n";
                return 2;
            }
        } else if (arg == "--port-file") {
            server_only_flag = arg;
            port_file = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            std::cout << "chocoq_serve " << CHOCOQ_VERSION_STRING << "\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }

    if (listen && !input_path.empty()) {
        std::cerr << "--listen and --input are mutually exclusive\n";
        return 2;
    }
    // The 64-connection default exists to bound reader threads; the
    // event loop has no per-connection thread, so unless the operator
    // chose a bound, give it headroom for what it was built for.
    if (server_options.eventLoop && !max_conns_set)
        server_options.maxConnections = 1024;
    if (!listen && !server_only_flag.empty()) {
        std::cerr << server_only_flag << " requires --listen\n";
        return 2;
    }

    // Fault-spec grammar errors are operator errors: exit 2 before
    // anything is bound or any worker starts.
    chocoq::service::FaultSpec fault_spec;
    if (!fault_spec_text.empty()) {
        try {
            fault_spec = chocoq::service::parseFaultSpec(fault_spec_text);
        } catch (const std::exception &e) {
            std::cerr << "chocoq_serve: --fault-spec: " << e.what() << "\n";
            return 2;
        }
    }
    // The injector outlives the service/server (non-owning pointers);
    // it is only wired in when a clause actually enables a site, so an
    // unset or all-zero spec leaves every hot path untouched.
    chocoq::service::FaultInjector fault_injector(fault_spec);
    if (fault_spec.enabled()) {
        options.fault = &fault_injector;
        server_options.fault = &fault_injector;
    }
    const chocoq::service::FaultInjector *fault_active =
        fault_spec.enabled() ? &fault_injector : nullptr;

    chocoq::service::SolveService service(options);
    chocoq::Timer wall;

    std::unique_ptr<MetricsFileWriter> metrics_writer;
    if (!metrics_file.empty())
        metrics_writer = std::make_unique<MetricsFileWriter>(
            service, metrics_file, metrics_interval_ms);

    if (listen) {
        // Handlers go in before anything is externally observable: a
        // supervisor that reacts to the port file (or the banner) may
        // SIGTERM immediately, and that must already mean "drain", not
        // the default kill.
        struct sigaction sa {};
        sa.sa_handler = onSignal;
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);

        chocoq::service::Server server(service, server_options);
        try {
            server.start();
        } catch (const std::exception &e) {
            std::cerr << "chocoq_serve: " << e.what() << "\n";
            return 2;
        }
        if (!port_file.empty()) {
            std::ofstream pf(port_file);
            pf << server.port() << "\n";
        }
        std::cerr << "chocoq_serve: listening on "
                  << server_options.bindAddress << ":" << server.port()
                  << " (" << service.workers() << " workers, "
                  << (server_options.eventLoop
                          ? "event-loop front-end, "
                            + std::to_string(std::max(
                                  1, server_options.eventLoopShards))
                            + " shards"
                          : std::string("thread-per-connection front-end"))
                  << ")\n";

        while (!g_stop)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));

        // Graceful drain: finish accepted jobs, flush results, close.
        server.drain();
        if (metrics_writer)
            metrics_writer->stop(); // final snapshot sees drained counts
        const auto stats = server.stats();
        if (!quiet) {
            // No jobs/s here: lifetime-averaged throughput of a
            // long-lived (mostly idle) server would only mislead.
            const auto cache = service.cacheStats();
            std::cerr << "chocoq_serve: " << stats.requestsAccepted
                      << " jobs on " << service.workers()
                      << " workers over " << wall.seconds()
                      << " s lifetime, cache " << cache.hits << " hits / "
                      << cache.misses << " misses / " << cache.evictions
                      << " evictions (" << cache.bytes << " bytes held), "
                      << stats.jobsFailed << " failed\n";
            printRegistrySummary(service);
            printRobustnessSummary(service, fault_active);
            std::cerr << "chocoq_serve: " << stats.connectionsAccepted
                      << " connections (" << stats.connectionsRejected
                      << " refused), " << stats.resultsWritten
                      << " results written, " << stats.rejected
                      << " rejected (" << stats.queueWaited
                      << " accepted after queue wait), " << stats.lineErrors
                      << " malformed lines, " << stats.idleCloses
                      << " idle closes; drained\n";
            // Control-plane traffic gets its own line only when any
            // occurred; a server that never saw a cancel or a health
            // probe keeps the familiar two-line epilogue.
            if (stats.cancelRequests > 0 || stats.healthProbes > 0
                || stats.jobsCancelled > 0 || stats.disconnectCancels > 0
                || stats.faultConnResets > 0)
                std::cerr << "chocoq_serve: control " << stats.cancelRequests
                          << " cancel requests / " << stats.healthProbes
                          << " health probes, " << stats.jobsCancelled
                          << " jobs cancelled ("
                          << stats.disconnectCancels
                          << " by disconnect), "
                          << stats.faultConnResets
                          << " injected conn resets\n";
        }
        return 0;
    }

    std::ifstream file;
    if (!input_path.empty()) {
        file.open(input_path);
        if (!file) {
            std::cerr << "cannot open " << input_path << "\n";
            return 2;
        }
    }
    std::istream &in = input_path.empty() ? std::cin : file;

    const auto stats =
        chocoq::service::runJsonlStream(in, std::cout, service,
                                        stream_limits);
    if (metrics_writer)
        metrics_writer->stop(); // final snapshot sees drained counts
    if (!quiet)
        printSummary(service, stats.submitted, stats.failed, wall.seconds(),
                     fault_active);
    return stats.failed == 0 ? 0 : 1;
}
