#!/usr/bin/env python3
"""Render chocoq trace timelines and diff stats snapshots (stdlib only).

Timeline mode (the default) reads JSONL from FILE (or stdin with `-`,
also the default) and renders every trace it finds as an aligned text
timeline — one row per span, indented by containment, with a bar scaled
over the whole job:

    chocoq_serve --quiet < traced_jobs.jsonl | trace_view.py
    trace_view.py results.jsonl

Accepted line shapes: a result line carrying a "trace" member (what the
server emits for "trace":true jobs), or a bare trace object
({"spans":[...]}). Lines without a trace are skipped silently, so the
raw server output pipes straight in.

Diff mode compares two stats snapshots — {"type":"stats"} probe bodies
or --metrics-file JSONL files (the last snapshot line of each file is
used):

    trace_view.py --diff before.json after.json

It prints counter deltas, gauge movement, and per-histogram activity
(delta count, and the later snapshot's avg/p50/p99/max) so "what did
this load do to the service" is one command.

socket_client.py --trace imports format_trace() from this module, so
client-side and offline rendering stay identical.

Exit status: 0 on success (including "no traces found"), 2 on usage or
file errors.
"""

import json
import os
import sys

BAR_WIDTH = 40


def _span_depth(spans, i):
    """Containment depth of span i: how many other spans enclose it.

    A span encloses another when its [start, end] interval covers the
    other's. Ties on identical intervals fall back to record order, so
    a parent emitted before the nested span it contains (the server's
    documented tie order) renders as the parent.
    """
    s = spans[i]
    s_start = s.get("start_ms", 0.0)
    s_end = s_start + s.get("dur_ms", 0.0)
    depth = 0
    for j, other in enumerate(spans):
        if j == i:
            continue
        o_start = other.get("start_ms", 0.0)
        o_end = o_start + other.get("dur_ms", 0.0)
        if o_start <= s_start and o_end >= s_end:
            if (o_start, o_end) == (s_start, s_end) and j > i:
                continue
            depth += 1
    return depth


def format_trace(trace, label=""):
    """Format one trace object ({"spans":[...]}) as a list of lines."""
    spans = trace.get("spans", [])
    total = 0.0
    for s in spans:
        total = max(total, s.get("start_ms", 0.0) + s.get("dur_ms", 0.0))
    head = "trace"
    if label:
        head += f" {label}"
    head += f" ({len(spans)} spans, {total:.3f} ms)"
    if not spans:
        return [head]

    names = []
    for i, s in enumerate(spans):
        names.append("  " * _span_depth(spans, i) + s.get("name", "?"))
    name_w = max(len(n) for n in names)

    lines = [head]
    for s, name in zip(spans, names):
        start = s.get("start_ms", 0.0)
        dur = s.get("dur_ms", 0.0)
        if total > 0.0:
            begin = int(start / total * BAR_WIDTH)
            length = max(1, round(dur / total * BAR_WIDTH))
            begin = min(begin, BAR_WIDTH - 1)
            length = min(length, BAR_WIDTH - begin)
        else:
            begin, length = 0, 1
        bar = " " * begin + "#" * length
        row = (
            f"  {name:<{name_w}}  {start:9.3f} +{dur:9.3f} ms"
            f"  |{bar:<{BAR_WIDTH}}|"
        )
        note = s.get("note", "")
        if note:
            row += f"  {note}"
        lines.append(row)
    return lines


def extract_trace(obj):
    """The trace object inside a parsed JSONL line, or None."""
    if not isinstance(obj, dict):
        return None
    if isinstance(obj.get("trace"), dict):
        return obj["trace"]
    if isinstance(obj.get("spans"), list):
        return obj
    return None


def load_snapshot(path):
    """Load a stats snapshot: a JSON object with a "counters" member,
    or a --metrics-file JSONL file (last snapshot line wins)."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        obj = json.loads(text)
        if isinstance(obj, dict) and "counters" in obj:
            return obj
    except ValueError:
        pass
    snapshot = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if isinstance(obj, dict) and "counters" in obj:
            snapshot = obj
    if snapshot is None:
        raise ValueError(f"no stats snapshot found in {path}")
    return snapshot


def format_stats_diff(a, b):
    """Format the movement from snapshot a to snapshot b as lines."""
    lines = []

    a_counters = a.get("counters", {})
    b_counters = b.get("counters", {})
    names = sorted(set(a_counters) | set(b_counters))
    if names:
        width = max(len(n) for n in names)
        lines.append("counters:")
        for n in names:
            va = int(a_counters.get(n, 0))
            vb = int(b_counters.get(n, 0))
            delta = vb - va
            row = f"  {n:<{width}}  {va:>10} -> {vb:<10}"
            if delta:
                row += f" ({delta:+d})"
            lines.append(row)

    a_gauges = a.get("gauges", {})
    b_gauges = b.get("gauges", {})
    names = sorted(set(a_gauges) | set(b_gauges))
    if names:
        width = max(len(n) for n in names)
        lines.append("gauges:")
        for n in names:
            va = float(a_gauges.get(n, 0.0))
            vb = float(b_gauges.get(n, 0.0))
            lines.append(f"  {n:<{width}}  {va:>10.3f} -> {vb:<10.3f}")

    a_hists = a.get("histograms", {})
    b_hists = b.get("histograms", {})
    names = sorted(set(a_hists) | set(b_hists))
    if names:
        width = max(len(n) for n in names)
        lines.append(
            f"histograms:{'':{max(0, width - 10)}}"
            "   +count     avg_ms     p50_ms     p99_ms     max_ms"
        )
        for n in names:
            ha = a_hists.get(n, {})
            hb = b_hists.get(n, {})
            dcount = int(hb.get("count", 0)) - int(ha.get("count", 0))
            lines.append(
                f"  {n:<{width}}  {dcount:>7}"
                f" {float(hb.get('avg_ms', 0.0)):>10.3f}"
                f" {float(hb.get('p50_ms', 0.0)):>10.3f}"
                f" {float(hb.get('p99_ms', 0.0)):>10.3f}"
                f" {float(hb.get('max_ms', 0.0)):>10.3f}"
            )
    return lines


def run_diff(path_a, path_b):
    try:
        a = load_snapshot(path_a)
        b = load_snapshot(path_b)
    except (OSError, ValueError) as e:
        print(f"trace_view: {e}", file=sys.stderr)
        return 2
    for line in format_stats_diff(a, b):
        print(line)
    return 0


def run_timeline(path):
    if path == "-":
        stream = sys.stdin
    else:
        try:
            stream = open(path, encoding="utf-8")
        except OSError as e:
            print(f"trace_view: {e}", file=sys.stderr)
            return 2
    rendered = 0
    with stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            trace = extract_trace(obj)
            if trace is None:
                continue
            label = obj.get("id", "") if isinstance(obj, dict) else ""
            if rendered:
                print()
            for out in format_trace(trace, label=label):
                print(out)
            rendered += 1
    if rendered == 0:
        print("trace_view: no traces found", file=sys.stderr)
    return 0


def main(argv):
    args = list(argv[1:])
    if args and args[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0
    if args and args[0] == "--diff":
        if len(args) != 3:
            print("usage: trace_view.py --diff A B", file=sys.stderr)
            return 2
        return run_diff(args[1], args[2])
    if len(args) > 1:
        print("usage: trace_view.py [FILE|-] | --diff A B", file=sys.stderr)
        return 2
    return run_timeline(args[0] if args else "-")


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
