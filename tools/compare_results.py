#!/usr/bin/env python3
"""Compare two chocoq_serve JSONL result streams (stdlib only).

Results are matched by id and compared field-for-field after dropping
the fields that legitimately differ between runs (timings, worker
index, cache warmth). Everything else — status, problem, solver,
best_cost, dist_hash, iteration counts, ... — must match exactly;
doubles are serialized with round-trip precision, so textual equality
is bitwise equality (see docs/protocol.md). This is how CI asserts
that socket mode and batch mode return identical results.

Usage: compare_results.py A.jsonl B.jsonl [--ignore F1,F2,...]
--ignore adds fields to the volatile set — e.g.
`--ignore problem,problem_ref` when comparing an inline-problem run
against the same model submitted as a registry case (same math, the
problem is *named* differently; see docs/protocol.md).
Exit status: 0 when the streams agree, 1 otherwise (differences are
reported per id).
"""

import json
import sys

# Run-dependent observability fields: everything else must be equal.
VOLATILE = {
    "cache_hit",
    "compile_s",
    "sim_s",
    "classical_s",
    "queue_ms",
    "solve_ms",
    "worker",
}


def load(path: str, volatile: set) -> dict:
    rows = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            row = json.loads(line)
            key = row.get("id", f"{path}:{lineno}")
            rows[key] = {k: v for k, v in row.items() if k not in volatile}
    return rows


def main(argv: list) -> int:
    volatile = set(VOLATILE)
    if "--ignore" in argv:
        at = argv.index("--ignore")
        if at + 1 >= len(argv):
            print("missing value for --ignore", file=sys.stderr)
            return 2
        volatile |= {f for f in argv[at + 1].split(",") if f}
        argv = argv[:at] + argv[at + 2 :]
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a, b = load(argv[1], volatile), load(argv[2], volatile)
    failures = []
    for key in sorted(set(a) | set(b)):
        if key not in a:
            failures.append(f"{key}: only in {argv[2]}")
        elif key not in b:
            failures.append(f"{key}: only in {argv[1]}")
        elif a[key] != b[key]:
            diff = {
                f
                for f in set(a[key]) | set(b[key])
                if a[key].get(f) != b[key].get(f)
            }
            failures.append(
                f"{key}: fields differ: "
                + ", ".join(
                    f"{f} ({a[key].get(f)!r} vs {b[key].get(f)!r})"
                    for f in sorted(diff)
                )
            )
    for failure in failures:
        print(failure, file=sys.stderr)
    print(
        f"compare_results: {len(a)} vs {len(b)} results, "
        f"{len(failures)} difference(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
