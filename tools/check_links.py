#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only).

Checks every inline link/image in the given markdown files:
  - relative file targets must exist on disk (resolved against the
    linking file's directory);
  - fragment targets (#anchor, in-file or cross-file) must match a
    heading's GitHub-style slug in the target file;
  - external schemes (http/https/mailto) are skipped — CI must not
    depend on network reachability.

Usage: check_links.py FILE.md [FILE.md ...]
Exit status: 0 when every link resolves, 1 otherwise (each failure is
reported as file:line: message).
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) — code spans are stripped first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, keep word chars,
    spaces and hyphens, then hyphenate the spaces."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    # Emphasis asterisks/tildes are markup; underscores in identifiers
    # (CHOCOQ_THREADS, chocoq_serve) are literal and stay in the slug.
    text = re.sub(r"[*~]", "", text)
    # Drop inline link targets, keep the text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    in_code = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        # Duplicate headings get -1, -2, ... suffixes on GitHub.
        candidate = slug
        n = 0
        while candidate in anchors:
            n += 1
            candidate = f"{slug}-{n}"
        anchors.add(candidate)
    return anchors


def check_file(path: Path, anchor_cache: dict) -> list:
    failures = []
    in_code = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
            target = match.group(1)
            if EXTERNAL_RE.match(target):
                continue  # external scheme: out of scope
            file_part, _, fragment = target.partition("#")
            dest = (
                path
                if not file_part
                else (path.parent / file_part).resolve()
            )
            if not dest.exists():
                failures.append(
                    f"{path}:{lineno}: broken link '{target}' "
                    f"(no such file {dest})"
                )
                continue
            if fragment:
                if dest.suffix.lower() not in (".md", ".markdown"):
                    continue
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment not in anchor_cache[dest]:
                    failures.append(
                        f"{path}:{lineno}: broken anchor '{target}' "
                        f"(no heading '#{fragment}' in {dest.name})"
                    )
    return failures


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    anchor_cache = {}
    checked = 0
    for name in argv[1:]:
        path = Path(name).resolve()
        if not path.exists():
            failures.append(f"{name}: file not found")
            continue
        failures.extend(check_file(path, anchor_cache))
        checked += 1
    for failure in failures:
        print(failure, file=sys.stderr)
    print(
        f"check_links: {checked} files, "
        f"{len(failures)} broken link(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
