#!/usr/bin/env python3
"""Perf regression gate over the annotated kernel benchmark JSON.

Compares fresh BENCH_kernels.json run(s) against the committed baseline
for the same machine (bench/baselines/<fingerprint>.json, where the
fingerprint is the hardware hash bench_micro embeds in the "machine"
block). A kernel whose ns_per_amp regressed by more than the threshold
(default 15%) fails the check — but only when the fingerprints match:
on unknown hardware the comparison is advisory (reported, exit 0),
because ns/amp is not portable across machines. The roofline inputs
(bytes_per_amp / flops_per_amp) come from a static cost model and ARE
portable, so a drift in those is an error on any machine: the kernel's
traffic shape changed without the baseline being refreshed.

--current accepts SEVERAL run files; they are merged by taking, per
kernel, the entry with the minimum ns_per_amp across runs. The minimum
is the noise-robust statistic for timing gates: interference and CPU
steal only ever make a run slower, so min-of-N converges on the true
quiet-machine time while a single sample can read tens of percent high
on a shared runner. CI runs the smoke benchmark three times and gates
on the merged minimum; capture baselines the same way.

Usage:
    check_perf_regression.py [--current BENCH.json [BENCH2.json ...]]
                             [--baselines-dir bench/baselines]
                             [--threshold 0.15]
                             [--refresh]   # (re)write the baseline
                             [--self-test] # verify the gate can fail

--refresh writes the merged current run(s) to
bench/baselines/<fingerprint>.json (commit the result; recipe in
docs/benchmarks.md). --self-test perturbs a copy of the current run's
ns_per_amp in memory by more than the threshold and asserts the gate
reports a regression against it — run in CI so the gate's failure path
is exercised on every machine, even where fingerprints never match a
committed baseline.

Exit codes: 0 ok/advisory, 1 regression (or self-test failure),
2 usage/input error.
"""

import argparse
import copy
import json
import os
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


def kernel_entries(doc):
    """name -> entry for every benchmark carrying ns_per_amp."""
    out = {}
    for bench in doc.get("benchmarks", []):
        if isinstance(bench, dict) and "ns_per_amp" in bench:
            out[str(bench.get("name"))] = bench
    return out


def merge_min(docs):
    """Merge N runs into one doc, keeping per kernel the entry with the
    minimum ns_per_amp. Non-kernel entries and the machine block come
    from the first run. All runs must share one fingerprint."""
    merged = copy.deepcopy(docs[0])
    fingerprints = {d.get("machine", {}).get("fingerprint") for d in docs}
    if len(fingerprints) != 1:
        raise ValueError(
            f"runs span multiple fingerprints: {sorted(map(str, fingerprints))}")
    best = {}
    for doc in docs:
        for name, entry in kernel_entries(doc).items():
            if name not in best or (float(entry["ns_per_amp"])
                                    < float(best[name]["ns_per_amp"])):
                best[name] = entry
    merged["benchmarks"] = [
        best.get(str(b.get("name")), b) if isinstance(b, dict) else b
        for b in merged.get("benchmarks", [])]
    return merged


def compare(current, baseline, threshold):
    """Return (regressions, model_drifts, improvements, compared)."""
    cur = kernel_entries(current)
    base = kernel_entries(baseline)
    regressions = []
    model_drifts = []
    improvements = []
    compared = 0
    for name in sorted(set(cur) & set(base)):
        c, b = cur[name], base[name]
        base_ns = float(b["ns_per_amp"])
        cur_ns = float(c["ns_per_amp"])
        if base_ns <= 0.0:
            continue
        compared += 1
        ratio = cur_ns / base_ns
        if ratio > 1.0 + threshold:
            regressions.append((name, base_ns, cur_ns, ratio))
        elif ratio < 1.0 - threshold:
            improvements.append((name, base_ns, cur_ns, ratio))
        for key in ("bytes_per_amp", "flops_per_amp"):
            if key in c and key in b:
                cv, bv = float(c[key]), float(b[key])
                if abs(cv - bv) > 1e-9 * max(1.0, abs(bv)):
                    model_drifts.append((name, key, bv, cv))
    return regressions, model_drifts, improvements, compared


def report(tag, regressions, model_drifts, improvements, compared):
    for name, base_ns, cur_ns, ratio in regressions:
        print(f"check_perf_regression: {tag} REGRESSION {name}: "
              f"{base_ns:.4f} -> {cur_ns:.4f} ns/amp "
              f"({100.0 * (ratio - 1.0):+.1f}%)", file=sys.stderr)
    for name, key, bv, cv in model_drifts:
        print(f"check_perf_regression: {tag} MODEL DRIFT {name}.{key}: "
              f"{bv} -> {cv} (cost model changed; refresh the baseline)",
              file=sys.stderr)
    for name, base_ns, cur_ns, ratio in improvements:
        print(f"check_perf_regression: {tag} improvement {name}: "
              f"{base_ns:.4f} -> {cur_ns:.4f} ns/amp "
              f"({100.0 * (ratio - 1.0):+.1f}%)")
    print(f"check_perf_regression: {tag} compared {compared} kernel(s), "
          f"{len(regressions)} regression(s), {len(model_drifts)} "
          f"model drift(s), {len(improvements)} improvement(s)")


def self_test(current, threshold):
    """Perturb a copy of the current run in memory and assert the gate
    trips. The rigged baseline is the current run with every ns_per_amp
    divided by (1 + 2*threshold), so each comparison lands at exactly
    +2*threshold regardless of how the real baseline relates to the
    current numbers — deterministic, and independent of whether a
    committed baseline even exists."""
    rigged = copy.deepcopy(current)
    if not kernel_entries(rigged):
        print("check_perf_regression: self-test FAILED — no kernel "
              "entries to perturb", file=sys.stderr)
        return 1
    for entry in kernel_entries(rigged).values():
        entry["ns_per_amp"] = float(entry["ns_per_amp"]) \
            / (1.0 + 2.0 * threshold)
    regressions, _, _, compared = compare(current, rigged, threshold)
    if len(regressions) != compared or compared == 0:
        print(f"check_perf_regression: self-test FAILED — expected "
              f"{compared} injected regression(s), detected "
              f"{len(regressions)}", file=sys.stderr)
        return 1
    print(f"check_perf_regression: self-test ok (injected regression "
          f"detected on {compared}/{compared} kernel(s))")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", nargs="+",
                        default=["BENCH_kernels.json"])
    parser.add_argument("--baselines-dir", default="bench/baselines")
    parser.add_argument("--threshold", type=float, default=0.15)
    parser.add_argument("--refresh", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    docs = []
    for path in args.current:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_perf_regression: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(doc.get("machine"), dict) \
                or not doc["machine"].get("fingerprint"):
            print(f"check_perf_regression: {path} has no machine block "
                  "— run bench_micro so the roofline annotation runs",
                  file=sys.stderr)
            return 2
        docs.append(doc)
    try:
        current = merge_min(docs)
    except ValueError as exc:
        print(f"check_perf_regression: {exc}", file=sys.stderr)
        return 2
    if len(docs) > 1:
        print(f"check_perf_regression: merged {len(docs)} run(s), "
              "gating on per-kernel minimum ns_per_amp")
    machine = current["machine"]
    fingerprint = machine["fingerprint"]
    baseline_path = os.path.join(args.baselines_dir, f"{fingerprint}.json")

    if args.refresh:
        os.makedirs(args.baselines_dir, exist_ok=True)
        with open(baseline_path, "w") as fh:
            json.dump(current, fh, indent=2)
            fh.write("\n")
        print(f"check_perf_regression: baseline refreshed at "
              f"{baseline_path}")
        return 0

    matched = os.path.exists(baseline_path)
    if matched:
        baseline = load(baseline_path)
        tag = f"[{fingerprint}]"
    else:
        # Advisory mode: compare against any committed baseline so the
        # log still shows the trend, but never fail on foreign hardware.
        candidates = sorted(
            f for f in os.listdir(args.baselines_dir)
            if f.endswith(".json")) if os.path.isdir(
                args.baselines_dir) else []
        if not candidates:
            print(f"check_perf_regression: no baseline for {fingerprint} "
                  "and none committed; nothing to compare")
            return self_test_only(args, current)
        baseline = load(os.path.join(args.baselines_dir, candidates[0]))
        tag = (f"[advisory: {fingerprint} vs "
               f"{os.path.splitext(candidates[0])[0]}]")

    regressions, model_drifts, improvements, compared = compare(
        current, baseline, args.threshold)
    report(tag, regressions, model_drifts, improvements, compared)

    if args.self_test:
        rc = self_test(current, args.threshold)
        if rc != 0:
            return rc

    # Model drifts are machine-independent facts: gate everywhere.
    if model_drifts:
        return 1
    if matched and regressions:
        return 1
    if not matched and regressions:
        print("check_perf_regression: fingerprint mismatch — "
              "regressions above are advisory only")
    return 0


def self_test_only(args, current):
    if not args.self_test:
        return 0
    return self_test(current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
